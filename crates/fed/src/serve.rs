//! Checkpoint/resume experiment serving with convergence-controlled
//! auto-tuning.
//!
//! This module turns the one-shot experiment runners into a durable
//! service (`spec_serve` in `autofl-bench`):
//!
//! - A **queue directory** of [`crate::spec::ExperimentSpec`] JSON files
//!   is consumed job by job ([`serve`]); each `(policy, repeat)` unit
//!   streams a JSONL round trace and **checkpoints** its full simulation
//!   state — global model / surrogate curve, Q-tables, fleet lifecycle
//!   state, the async scheduler's event heap and every live RNG stream
//!   position — through the workspace serde stack.
//! - A killed run **resumes bit-identically**: restarting the daemon
//!   finds the job in `active/`, restores the last checkpoint, rewrites
//!   the trace from the checkpointed records (so a line torn by SIGKILL
//!   disappears) and continues; the final trace is byte-for-byte the
//!   trace of a run that was never interrupted (pinned in
//!   `tests/checkpoint.rs` and the CI smoke job).
//! - A [`ConvergenceController`] may drive the otherwise-dormant
//!   [`Policy::tune`] hook *every round*, steering `K` toward a
//!   [`ConvergeTarget`] (a per-round energy budget or an accuracy
//!   floor) instead of leaving `(B, E, K)` fixed for the whole run.
//!
//! Layout under the serve root:
//!
//! ```text
//! root/queue/<job>.json                      # pending specs
//! root/active/<job>/spec.json                # the job being run
//! root/active/<job>/traces/<policy>-r<i>.jsonl
//! root/active/<job>/state/<policy>-r<i>.ckpt.json
//! root/done/<job>/…                          # finished jobs (+ summary.json)
//! ```
//!
//! See `docs/serving.md` for the checkpoint envelope, the resume
//! contract and the controller targets.

use crate::builder::ConfigError;
use crate::engine::{RoundRecord, SimConfig, SimResult, Simulation};
use crate::global::GlobalParams;
use crate::policy::{Policy, PolicyRegistry};
use crate::runtime::EventDrivenRun;
use crate::selection::Selector;
use crate::spec::{ExperimentSpec, SpecError};
use serde::{Deserialize, Serialize};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

// ---------------------------------------------------------------------------
// Errors.
// ---------------------------------------------------------------------------

/// Why the serve loop (or one of its jobs) failed.
#[derive(Debug)]
pub enum ServeError {
    /// A filesystem or trace-writer failure, with the path involved.
    Io {
        /// What the daemon was doing.
        context: String,
        /// The underlying error.
        source: std::io::Error,
    },
    /// A spec file that does not parse or validate.
    Spec {
        /// The spec file.
        path: PathBuf,
        /// The underlying error.
        source: SpecError,
    },
    /// A checkpoint that does not parse, fails its digest, or does not
    /// match the run it is being restored onto.
    Checkpoint {
        /// The checkpoint file.
        path: PathBuf,
        /// What is wrong with it.
        reason: String,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io { context, source } => write!(f, "{context}: {source}"),
            ServeError::Spec { path, source } => write!(f, "{}: {source}", path.display()),
            ServeError::Checkpoint { path, reason } => {
                write!(
                    f,
                    "checkpoint {}: {reason} (delete the file to restart this unit from scratch)",
                    path.display()
                )
            }
        }
    }
}

impl std::error::Error for ServeError {}

impl ServeError {
    fn io(context: impl Into<String>) -> impl FnOnce(std::io::Error) -> ServeError {
        let context = context.into();
        move |source| ServeError::Io { context, source }
    }
}

// ---------------------------------------------------------------------------
// Checkpoint envelope.
// ---------------------------------------------------------------------------

/// Version of the checkpoint envelope this build writes and reads.
pub const CHECKPOINT_VERSION: u64 = 1;

/// FNV-1a 64-bit digest of the canonical payload JSON, as fixed-width
/// hex. Not cryptographic — it guards against torn writes and hand
/// edits, not adversaries.
pub fn payload_digest(payload: &serde::Value) -> String {
    let text = serde_json::to_string(payload).expect("checkpoint payload serializes");
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in text.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{hash:016x}")
}

/// Atomically writes `payload` to `path` inside a versioned, digested
/// envelope `{version, digest, payload}` (tmp file + rename, so a crash
/// mid-write leaves either the old checkpoint or the new one, never a
/// torn file).
pub fn write_checkpoint(path: &Path, payload: serde::Value) -> std::io::Result<()> {
    let envelope = serde::Value::Map(vec![
        ("version".to_string(), CHECKPOINT_VERSION.to_value()),
        (
            "digest".to_string(),
            serde::Value::Str(payload_digest(&payload)),
        ),
        ("payload".to_string(), payload),
    ]);
    let text = serde_json::to_string(&envelope).expect("checkpoint envelope serializes");
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, text)?;
    std::fs::rename(&tmp, path)
}

/// Reads a checkpoint envelope back, verifying the version and the
/// payload digest, and returns the payload.
pub fn read_checkpoint(path: &Path) -> Result<serde::Value, ServeError> {
    let bad = |reason: String| ServeError::Checkpoint {
        path: path.to_path_buf(),
        reason,
    };
    let text = std::fs::read_to_string(path).map_err(|e| bad(format!("cannot read: {e}")))?;
    let envelope: serde::Value =
        serde_json::from_str(&text).map_err(|e| bad(format!("not valid JSON: {e}")))?;
    let version = u64::from_value(serde::field_or_null(&envelope, "version"))
        .map_err(|e| bad(format!("bad version field: {e}")))?;
    if version != CHECKPOINT_VERSION {
        return Err(bad(format!(
            "envelope version {version} is not the supported version {CHECKPOINT_VERSION}"
        )));
    }
    let digest = String::from_value(serde::field_or_null(&envelope, "digest"))
        .map_err(|e| bad(format!("bad digest field: {e}")))?;
    let payload = envelope
        .get("payload")
        .cloned()
        .ok_or_else(|| bad("missing payload".to_string()))?;
    let actual = payload_digest(&payload);
    if actual != digest {
        return Err(bad(format!(
            "digest mismatch: envelope says {digest}, payload hashes to {actual}"
        )));
    }
    Ok(payload)
}

// ---------------------------------------------------------------------------
// Convergence control.
// ---------------------------------------------------------------------------

/// What a controlled run converges *toward* — the quantity the
/// [`ConvergenceController`] steers each round by retuning `K` through
/// [`Policy::tune`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ConvergeTarget {
    /// Keep the fleet's total per-round energy near a budget. Overspent
    /// rounds shrink the cohort, under-budget rounds grow it back.
    EnergyBudget {
        /// The per-round budget in joules.
        joules_per_round: f64,
    },
    /// Keep the measured accuracy at or above a floor. Rounds below the
    /// floor grow the cohort; rounds comfortably above it shrink the
    /// cohort to save energy.
    AccuracyFloor {
        /// The accuracy floor in `[0, 1]`.
        accuracy: f64,
    },
}

impl ConvergeTarget {
    /// The `(actual, target)` pair for one completed round — the
    /// controller's measurement and setpoint. Both targets share one
    /// sign convention: *actual below target grows `K`*, actual above
    /// shrinks it (an under-budget round has headroom to field a larger
    /// cohort; accuracy above the floor is license to field a smaller,
    /// cheaper one).
    pub fn get_actual_and_target(&self, record: &RoundRecord) -> (f64, f64) {
        match self {
            ConvergeTarget::EnergyBudget { joules_per_round } => {
                (record.total_energy_j(), *joules_per_round)
            }
            ConvergeTarget::AccuracyFloor { accuracy } => (record.accuracy, *accuracy),
        }
    }

    /// Human-readable target, for report headers and logs.
    pub fn converge_target_string(&self) -> String {
        match self {
            ConvergeTarget::EnergyBudget { joules_per_round } => {
                format!("energy_budget({joules_per_round} J/round)")
            }
            ConvergeTarget::AccuracyFloor { accuracy } => {
                format!("accuracy_floor({accuracy})")
            }
        }
    }
}

/// The serializable position of a [`ConvergenceController`] — what a
/// checkpoint needs so a resumed run continues the same control
/// trajectory.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ControllerState {
    /// Multiplicative scale applied to the base `K` (starts at 1).
    pub scale: f64,
    /// Exponential moving average of the measured quantity; `None`
    /// before the first round.
    pub ema: Option<f64>,
}

impl Default for ControllerState {
    fn default() -> Self {
        ControllerState {
            scale: 1.0,
            ema: None,
        }
    }
}

/// A proportional controller over the cohort size: each round it folds
/// the measured quantity into an EMA, compares it to the target, and
/// nudges a multiplicative scale on the base `K` toward closing the
/// gap. Deliberately simple — one gain, one smoothing factor, hard
/// clamps — because the plant (round energy vs. `K`) is close to linear
/// and the controller must stay deterministic and serializable.
#[derive(Debug, Clone)]
pub struct ConvergenceController {
    target: ConvergeTarget,
    base: GlobalParams,
    /// Largest `K` the configuration stays valid at (fleet size, minus
    /// any over-selection margin).
    max_k: usize,
    gain: f64,
    alpha: f64,
    state: ControllerState,
}

impl ConvergenceController {
    /// Bounds on the multiplicative scale, so one wild round cannot
    /// collapse or explode the cohort.
    const SCALE_RANGE: (f64, f64) = (0.02, 50.0);

    /// A controller for `target` on `config`, treating `base` as the
    /// scale-1.0 reference parameters.
    pub fn new(target: ConvergeTarget, base: GlobalParams, config: &SimConfig) -> Self {
        let margin = match &config.fleet {
            Some(fleet) => match fleet.straggler {
                crate::fleet::StragglerPolicy::OverSelect { extra } => extra,
                _ => 0,
            },
            None => 0,
        };
        ConvergenceController {
            target,
            base,
            max_k: config.num_devices.saturating_sub(margin).max(1),
            gain: 0.2,
            alpha: 0.3,
            state: ControllerState::default(),
        }
    }

    /// The target being steered toward.
    pub fn target(&self) -> ConvergeTarget {
        self.target
    }

    /// The controller's serializable position.
    pub fn state(&self) -> ControllerState {
        self.state
    }

    /// Restores a position captured by [`ConvergenceController::state`].
    pub fn restore(&mut self, state: ControllerState) {
        self.state = state;
    }

    /// Folds one completed round into the controller: updates the EMA
    /// and moves the scale one proportional step toward the target.
    pub fn observe(&mut self, record: &RoundRecord) {
        let (actual, target) = self.target.get_actual_and_target(record);
        let ema = match self.state.ema {
            Some(prev) => self.alpha * actual + (1.0 - self.alpha) * prev,
            None => actual,
        };
        self.state.ema = Some(ema);
        // Relative error in the shared sign convention: positive when
        // the measurement sits below the target (grow), negative above
        // (shrink). Clamped so a degenerate round moves the scale at
        // most one full gain step.
        let denom = target.abs().max(f64::MIN_POSITIVE);
        let error = ((target - ema) / denom).clamp(-1.0, 1.0);
        let (lo, hi) = Self::SCALE_RANGE;
        self.state.scale = (self.state.scale * (1.0 + self.gain * error)).clamp(lo, hi);
    }

    /// The parameters the current scale implies: the base `(B, E)` with
    /// `K` rescaled and clamped to `[1, max_k]` — always a valid
    /// configuration, so [`Policy::tune`] can never invalidate the run.
    pub fn params(&self) -> GlobalParams {
        let k = (self.base.num_participants as f64 * self.state.scale).round() as usize;
        GlobalParams {
            num_participants: k.clamp(1, self.max_k),
            ..self.base
        }
    }
}

/// Wraps any [`Policy`] with a [`ConvergenceController`], surfacing the
/// controller's current parameters through the wrapped policy's
/// [`Policy::tune`] hook. [`ExperimentRun`] calls
/// [`Controlled::observe_round`] after every emitted record and then
/// re-invokes `tune` — the hook fires every round instead of once at
/// startup.
///
/// The controller sits behind a [`Mutex`] because `tune` takes `&self`
/// (policies are shared across worker threads); each `Controlled` is
/// owned by exactly one run, so the lock is never contended.
pub struct Controlled<'p> {
    inner: &'p dyn Policy,
    controller: Mutex<ConvergenceController>,
}

impl std::fmt::Debug for Controlled<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Controlled")
            .field("inner", &self.inner.name())
            .finish()
    }
}

impl<'p> Controlled<'p> {
    /// Wraps `inner` steering toward `target` on `config`. The scale-1.0
    /// reference is whatever `inner.tune(config)` yields (falling back
    /// to the config's own parameters), so controlling a
    /// [`crate::policy::TunedPolicy`] scales its tuned `K`, not the
    /// config's.
    pub fn new(inner: &'p dyn Policy, target: ConvergeTarget, config: &SimConfig) -> Self {
        let base = inner.tune(config).unwrap_or(config.params);
        Controlled {
            inner,
            controller: Mutex::new(ConvergenceController::new(target, base, config)),
        }
    }

    /// Feeds one completed round to the controller.
    pub fn observe_round(&self, record: &RoundRecord) {
        self.lock().observe(record);
    }

    /// The controller's serializable position (for checkpoints).
    pub fn controller_state(&self) -> ControllerState {
        self.lock().state()
    }

    /// Restores a checkpointed controller position.
    pub fn restore_controller_state(&self, state: ControllerState) {
        self.lock().restore(state);
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, ConvergenceController> {
        self.controller.lock().expect("controller lock poisoned")
    }
}

impl Policy for Controlled<'_> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn make_selector(&self) -> Box<dyn Selector> {
        self.inner.make_selector()
    }

    fn tune(&self, _config: &SimConfig) -> Option<GlobalParams> {
        Some(self.lock().params())
    }
}

// ---------------------------------------------------------------------------
// A single resumable (policy, repeat) run.
// ---------------------------------------------------------------------------

/// The round loop behind one run, lifted into a steppable state machine
/// so a checkpoint can land between any two emitted records.
enum Driver {
    /// The classic lockstep loop of `Simulation::run_labeled`.
    Lockstep {
        records: Vec<RoundRecord>,
        next_round: usize,
        done: bool,
    },
    /// The event-driven scheduler (`config.runtime` set).
    Event(EventDrivenRun),
}

/// One policy × one seed, runnable a record at a time, checkpointable
/// between any two records, and resumable bit-identically.
///
/// ```
/// use autofl_fed::engine::SimConfig;
/// use autofl_fed::policy::RandomPolicy;
/// use autofl_fed::serve::ExperimentRun;
///
/// let config = SimConfig::tiny_test(7);
/// let mut run = ExperimentRun::new(&config, &RandomPolicy, None).unwrap();
/// while run.step().unwrap().is_some() {}
/// assert!(!run.records().is_empty());
/// let result = run.into_result();
/// assert_eq!(result.policy, "FedAvg-Random");
/// ```
pub struct ExperimentRun<'p> {
    sim: Simulation,
    selector: Box<dyn Selector>,
    driver: Driver,
    policy_name: String,
    target: f64,
    controlled: Option<Controlled<'p>>,
}

impl std::fmt::Debug for ExperimentRun<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExperimentRun")
            .field("policy", &self.policy_name)
            .field("records", &self.records().len())
            .finish()
    }
}

impl<'p> ExperimentRun<'p> {
    /// Starts a fresh run of `policy` on `config`, optionally steering
    /// toward `control` each round. The policy's [`Policy::tune`] hook
    /// runs once up front exactly as in
    /// [`crate::policy::run_policy_observed`], but an invalid tuned
    /// configuration is returned as a [`ConfigError`] instead of a
    /// panic — a daemon must outlive a bad job.
    pub fn new(
        config: &SimConfig,
        policy: &'p dyn Policy,
        control: Option<ConvergeTarget>,
    ) -> Result<Self, ConfigError> {
        let mut run = Self::build(config, policy, control)?;
        if let Driver::Event(event) = &mut run.driver {
            event
                .prime(&mut run.sim, run.selector.as_mut(), &mut [])
                .expect("priming without observers cannot fail");
        }
        Ok(run)
    }

    /// Reconstructs a checkpointed run: builds the same fresh state
    /// [`ExperimentRun::new`] would (same start-of-run tuning, so the
    /// accuracy engine's nominal parameters match), *without* priming
    /// the scheduler, then restores `payload` over it.
    pub fn resume(
        config: &SimConfig,
        policy: &'p dyn Policy,
        control: Option<ConvergeTarget>,
        payload: &serde::Value,
    ) -> Result<Self, ServeError> {
        let mut run = Self::build(config, policy, control).map_err(|e| ServeError::Checkpoint {
            path: PathBuf::new(),
            reason: format!("config no longer validates: {e}"),
        })?;
        run.state_restore(payload)
            .map_err(|e| ServeError::Checkpoint {
                path: PathBuf::new(),
                reason: e.to_string(),
            })?;
        Ok(run)
    }

    /// Common construction: validate, apply the start-of-run tune, build
    /// the simulation, selector and (unprimed) driver.
    fn build(
        config: &SimConfig,
        policy: &'p dyn Policy,
        control: Option<ConvergeTarget>,
    ) -> Result<Self, ConfigError> {
        config.validate()?;
        let mut config = config.clone();
        let controlled = control.map(|target| Controlled::new(policy, target, &config));
        let tuned = match &controlled {
            Some(c) => c.tune(&config),
            None => policy.tune(&config),
        };
        if let Some(params) = tuned {
            config.params = params;
            config.validate()?;
        }
        let policy_name = policy.name().to_string();
        let target = config.target();
        let event_driven = config.runtime.is_some();
        let sim = Simulation::new(config);
        let selector = policy.make_selector();
        let driver = if event_driven {
            Driver::Event(EventDrivenRun::new(&sim))
        } else {
            Driver::Lockstep {
                records: Vec::new(),
                next_round: 0,
                done: false,
            }
        };
        Ok(ExperimentRun {
            sim,
            selector,
            driver,
            policy_name,
            target,
            controlled,
        })
    }

    /// Records emitted so far, in emission order (the order the trace
    /// streams in; equal to round order under the lockstep loop).
    pub fn records(&self) -> &[RoundRecord] {
        match &self.driver {
            Driver::Lockstep { records, .. } => records,
            Driver::Event(run) => run.records(),
        }
    }

    /// The global parameters currently in force (moves as the
    /// convergence controller retunes `K`).
    pub fn params(&self) -> GlobalParams {
        self.sim.config().params
    }

    /// Runs until the next record is emitted and returns it, or `None`
    /// once the run has finished (converged, horizon exhausted, or
    /// scheduler drained). After a record, the convergence controller —
    /// if any — observes it and re-tunes the live parameters through
    /// [`Policy::tune`].
    pub fn step(&mut self) -> std::io::Result<Option<RoundRecord>> {
        let max_rounds = self.sim.config().max_rounds;
        let emitted = match &mut self.driver {
            Driver::Lockstep {
                records,
                next_round,
                done,
            } => {
                if *done || *next_round >= max_rounds {
                    None
                } else {
                    let record = self.sim.run_round(self.selector.as_mut(), *next_round);
                    *next_round += 1;
                    if record.accuracy >= self.target {
                        *done = true;
                    }
                    records.push(record.clone());
                    Some(record)
                }
            }
            Driver::Event(run) => run.step(&mut self.sim, self.selector.as_mut(), &mut [])?,
        };
        if let (Some(record), Some(controlled)) = (&emitted, &self.controlled) {
            controlled.observe_round(record);
            if let Some(params) = controlled.tune(self.sim.config()) {
                self.sim.set_params(params);
            }
        }
        Ok(emitted)
    }

    /// Finishes the run and wraps the records (sorted by round) in a
    /// [`SimResult`] labelled with the policy name.
    pub fn into_result(self) -> SimResult {
        match self.driver {
            Driver::Lockstep { records, .. } => SimResult {
                policy: self.policy_name,
                target_accuracy: self.target,
                records,
            },
            Driver::Event(run) => run.into_result(self.policy_name),
        }
    }

    /// Serializes everything a resumed process needs: the simulation's
    /// live state (engine RNG, accuracy engine, fleet lifecycle store,
    /// clock, tuned parameters), the driver position (emitted records
    /// and, event-driven, the full scheduler), the selector's learned
    /// state (Q-tables, pending rounds, agent RNG) and the controller
    /// position.
    pub fn state_snapshot(&self) -> serde::Value {
        let driver = match &self.driver {
            Driver::Lockstep {
                records,
                next_round,
                done,
            } => serde::variant(
                "lockstep",
                serde::Value::Map(vec![
                    ("records".to_string(), records.to_value()),
                    ("next_round".to_string(), next_round.to_value()),
                    ("done".to_string(), done.to_value()),
                ]),
            ),
            Driver::Event(run) => serde::variant("event", run.state_snapshot()),
        };
        serde::Value::Map(vec![
            (
                "policy".to_string(),
                serde::Value::Str(self.policy_name.clone()),
            ),
            ("sim".to_string(), self.sim.state_snapshot()),
            ("driver".to_string(), driver),
            (
                "selector".to_string(),
                self.selector.state_snapshot().unwrap_or(serde::NULL),
            ),
            (
                "controller".to_string(),
                match &self.controlled {
                    Some(c) => c.controller_state().to_value(),
                    None => serde::Value::Null,
                },
            ),
        ])
    }

    /// Restores a payload captured by [`ExperimentRun::state_snapshot`]
    /// onto a freshly built (unprimed) run of the same spec.
    fn state_restore(&mut self, payload: &serde::Value) -> Result<(), serde::Error> {
        let policy = String::from_value(serde::field_or_null(payload, "policy"))
            .map_err(|e| e.at("policy"))?;
        if policy != self.policy_name {
            return Err(serde::Error::custom(format!(
                "checkpoint belongs to policy `{policy}`, not `{}`",
                self.policy_name
            )));
        }
        self.sim
            .state_restore(serde::field_or_null(payload, "sim"))
            .map_err(|e| e.at("sim"))?;
        let driver_value = serde::field_or_null(payload, "driver");
        let (kind, body) = serde::variant_parts(driver_value).ok_or_else(|| {
            serde::Error::invalid_type("single-entry variant map", driver_value).at("driver")
        })?;
        match (&mut self.driver, kind) {
            (
                Driver::Lockstep {
                    records,
                    next_round,
                    done,
                },
                "lockstep",
            ) => {
                *records = Vec::<RoundRecord>::from_value(serde::field_or_null(body, "records"))
                    .map_err(|e| e.at("records").at("driver"))?;
                *next_round = usize::from_value(serde::field_or_null(body, "next_round"))
                    .map_err(|e| e.at("next_round").at("driver"))?;
                *done = bool::from_value(serde::field_or_null(body, "done"))
                    .map_err(|e| e.at("done").at("driver"))?;
            }
            (Driver::Event(run), "event") => {
                run.state_restore(body).map_err(|e| e.at("driver"))?;
            }
            (driver, kind) => {
                return Err(serde::Error::custom(format!(
                    "checkpoint drives a `{kind}` loop but the config builds a `{}` one",
                    match driver {
                        Driver::Lockstep { .. } => "lockstep",
                        Driver::Event(_) => "event",
                    }
                ))
                .at("driver"));
            }
        }
        self.selector
            .state_restore(serde::field_or_null(payload, "selector"))
            .map_err(|e| e.at("selector"))?;
        let controller =
            Option::<ControllerState>::from_value(serde::field_or_null(payload, "controller"))
                .map_err(|e| e.at("controller"))?;
        match (&self.controlled, controller) {
            (Some(c), Some(state)) => {
                c.restore_controller_state(state);
                // Re-assert the restored control trajectory: the sim's
                // restored params already reflect it, but keeping both
                // in lockstep costs nothing and survives refactors.
                if let Some(params) = c.tune(self.sim.config()) {
                    self.sim.set_params(params);
                }
            }
            (None, None) => {}
            (have, _) => {
                return Err(serde::Error::custom(format!(
                    "checkpoint {} a controller state but the spec {} convergence control",
                    if have.is_some() { "lacks" } else { "holds" },
                    if have.is_some() {
                        "requests"
                    } else {
                        "does not request"
                    }
                ))
                .at("controller"));
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// The serve daemon.
// ---------------------------------------------------------------------------

/// Tuning of the [`serve`] loop.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Root directory holding `queue/`, `active/` and `done/`.
    pub root: PathBuf,
    /// Drain everything currently queued (and any interrupted jobs in
    /// `active/`), then return instead of polling forever.
    pub once: bool,
    /// Poll interval for new queue entries, in milliseconds.
    pub poll_ms: u64,
    /// Checkpoint each unit every this many emitted records.
    pub checkpoint_every: usize,
    /// Test/CI hook: hard-abort the process (the deterministic stand-in
    /// for SIGKILL) after this many records have been emitted across
    /// all units. `None` in production.
    pub crash_after_records: Option<usize>,
}

impl ServeOptions {
    /// Defaults: poll every 250 ms, checkpoint every round, never crash.
    pub fn new(root: impl Into<PathBuf>) -> Self {
        ServeOptions {
            root: root.into(),
            once: false,
            poll_ms: 250,
            checkpoint_every: 1,
            crash_after_records: None,
        }
    }
}

/// What one [`serve`] call accomplished.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeReport {
    /// Jobs moved to `done/`.
    pub jobs: usize,
    /// `(policy, repeat)` units completed (including resumed ones).
    pub units: usize,
}

/// One row of a job's `summary.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UnitSummary {
    /// The policy's registry name.
    pub policy: String,
    /// 0-based repeat index.
    pub repeat: usize,
    /// The master seed of this repeat.
    pub seed: u64,
    /// Rounds recorded.
    pub rounds: usize,
    /// Whether the run reached its accuracy target.
    pub converged: bool,
    /// Accuracy after the last round.
    pub final_accuracy: f64,
    /// Total energy across the run in joules.
    pub total_energy_j: f64,
    /// The `K` in force when the run ended (moves under convergence
    /// control; equals the spec's `K` otherwise).
    pub final_k: usize,
}

/// Runs the serve loop: consumes `root/queue/*.json` specs job by job,
/// resuming any interrupted jobs found in `root/active/` first. With
/// [`ServeOptions::once`] the call returns after draining; otherwise it
/// polls forever (run it under a supervisor and SIGKILL at will — that
/// is the point).
pub fn serve(registry: &PolicyRegistry, opts: &ServeOptions) -> Result<ServeReport, ServeError> {
    let queue = opts.root.join("queue");
    let active = opts.root.join("active");
    let done = opts.root.join("done");
    for dir in [&queue, &active, &done] {
        std::fs::create_dir_all(dir)
            .map_err(ServeError::io(format!("creating {}", dir.display())))?;
    }
    let crash_counter = AtomicUsize::new(0);
    let mut report = ServeReport::default();
    loop {
        // Interrupted jobs first (their queue file is already gone), in
        // name order for determinism; then newly queued specs.
        let mut jobs: Vec<PathBuf> = list_sorted(&active)?
            .into_iter()
            .filter(|p| p.join("spec.json").is_file())
            .collect();
        for entry in list_sorted(&queue)? {
            if entry.extension().map(|e| e != "json").unwrap_or(true) {
                continue;
            }
            let stem = entry
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_else(|| "job".to_string());
            let job_dir = active.join(&stem);
            std::fs::create_dir_all(&job_dir)
                .map_err(ServeError::io(format!("creating {}", job_dir.display())))?;
            std::fs::rename(&entry, job_dir.join("spec.json")).map_err(ServeError::io(format!(
                "claiming {} into {}",
                entry.display(),
                job_dir.display()
            )))?;
            jobs.push(job_dir);
        }
        if jobs.is_empty() {
            if opts.once {
                return Ok(report);
            }
            std::thread::sleep(std::time::Duration::from_millis(opts.poll_ms));
            continue;
        }
        for job_dir in jobs {
            report.units += run_job(registry, &job_dir, opts, &crash_counter)?;
            let dest = done.join(job_dir.file_name().expect("job dirs are named"));
            if dest.exists() {
                std::fs::remove_dir_all(&dest)
                    .map_err(ServeError::io(format!("clearing stale {}", dest.display())))?;
            }
            std::fs::rename(&job_dir, &dest).map_err(ServeError::io(format!(
                "finishing {} into {}",
                job_dir.display(),
                dest.display()
            )))?;
            report.jobs += 1;
        }
        if opts.once {
            // Re-scan once more: a job may have been queued while the
            // batch ran; `once` means "drain", not "one batch".
            continue;
        }
    }
}

/// Directory entries sorted by file name (std gives no order).
fn list_sorted(dir: &Path) -> Result<Vec<PathBuf>, ServeError> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(ServeError::io(format!("listing {}", dir.display())))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    Ok(entries)
}

/// Runs (or resumes) every `(policy, repeat)` unit of one job and writes
/// its `summary.json`. Returns the number of units completed.
fn run_job(
    registry: &PolicyRegistry,
    job_dir: &Path,
    opts: &ServeOptions,
    crash_counter: &AtomicUsize,
) -> Result<usize, ServeError> {
    let spec_path = job_dir.join("spec.json");
    let text = std::fs::read_to_string(&spec_path)
        .map_err(ServeError::io(format!("reading {}", spec_path.display())))?;
    let spec = ExperimentSpec::from_json(&text).map_err(|source| ServeError::Spec {
        path: spec_path.clone(),
        source,
    })?;
    let policies = spec.resolve(registry).map_err(|source| ServeError::Spec {
        path: spec_path.clone(),
        source,
    })?;
    for sub in ["traces", "state"] {
        let dir = job_dir.join(sub);
        std::fs::create_dir_all(&dir)
            .map_err(ServeError::io(format!("creating {}", dir.display())))?;
    }
    let mut summaries = Vec::new();
    for repeat in 0..spec.repeats {
        for policy in &policies {
            summaries.push(run_unit(
                &spec,
                *policy,
                repeat,
                job_dir,
                opts,
                crash_counter,
            )?);
        }
    }
    let summary = serde_json::to_string_pretty(&summaries).expect("summaries serialize");
    let summary_path = job_dir.join("summary.json");
    std::fs::write(&summary_path, summary).map_err(ServeError::io(format!(
        "writing {}",
        summary_path.display()
    )))?;
    // All units completed: the per-unit checkpoints are now dead weight.
    let _ = std::fs::remove_dir_all(job_dir.join("state"));
    Ok(summaries.len())
}

/// Runs one `(policy, repeat)` unit to completion, resuming from its
/// checkpoint if one exists, streaming its trace and checkpointing every
/// [`ServeOptions::checkpoint_every`] records.
fn run_unit(
    spec: &ExperimentSpec,
    policy: &dyn Policy,
    repeat: usize,
    job_dir: &Path,
    opts: &ServeOptions,
    crash_counter: &AtomicUsize,
) -> Result<UnitSummary, ServeError> {
    let mut config = spec.config.clone();
    config.seed = spec.config.seed.wrapping_add(repeat as u64);
    let unit = format!("{}-r{repeat}", policy.name());
    let trace_path = job_dir.join("traces").join(format!("{unit}.jsonl"));
    let ckpt_path = job_dir.join("state").join(format!("{unit}.ckpt.json"));

    let mut run = if ckpt_path.is_file() {
        let payload = read_checkpoint(&ckpt_path)?;
        ExperimentRun::resume(&config, policy, spec.control, &payload).map_err(|e| match e {
            // Attach the real path (resume has no path context).
            ServeError::Checkpoint { reason, .. } => ServeError::Checkpoint {
                path: ckpt_path.clone(),
                reason,
            },
            other => other,
        })?
    } else {
        ExperimentRun::new(&config, policy, spec.control).map_err(|source| ServeError::Spec {
            path: job_dir.join("spec.json"),
            source: SpecError::Config(source),
        })?
    };

    // (Re)write the trace from the records the run already carries: on
    // a fresh run that truncates to empty; on resume it replays the
    // checkpointed emission order, erasing any line the kill tore.
    let mut trace = std::fs::File::create(&trace_path)
        .map_err(ServeError::io(format!("creating {}", trace_path.display())))?;
    let trace_io = |e: std::io::Error| ServeError::Io {
        context: format!("writing {}", trace_path.display()),
        source: e,
    };
    for record in run.records() {
        let line = serde_json::to_string(record).expect("round record serializes");
        writeln!(trace, "{line}").map_err(trace_io)?;
    }
    trace.flush().map_err(trace_io)?;

    let mut since_checkpoint = 0usize;
    while let Some(record) = run.step().map_err(trace_io)? {
        let line = serde_json::to_string(&record).expect("round record serializes");
        writeln!(trace, "{line}").map_err(trace_io)?;
        trace.flush().map_err(trace_io)?;
        since_checkpoint += 1;
        if since_checkpoint >= opts.checkpoint_every.max(1) {
            write_checkpoint(&ckpt_path, run.state_snapshot())
                .map_err(ServeError::io(format!("writing {}", ckpt_path.display())))?;
            since_checkpoint = 0;
        }
        if let Some(n) = opts.crash_after_records {
            if crash_counter.fetch_add(1, Ordering::Relaxed) + 1 >= n {
                // The deterministic stand-in for SIGKILL: no unwinding,
                // no destructors, no flushes beyond what already hit
                // the OS — exactly what the resume path must survive.
                std::process::abort();
            }
        }
    }
    let final_k = run.params().num_participants;
    let result = run.into_result();
    let _ = std::fs::remove_file(&ckpt_path);
    Ok(UnitSummary {
        policy: result.policy.clone(),
        repeat,
        seed: config.seed,
        rounds: result.records.len(),
        converged: result.converged(),
        final_accuracy: result.final_accuracy(),
        total_energy_j: result
            .records
            .iter()
            .map(|r| r.total_energy_j())
            .sum::<f64>(),
        final_k,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{baseline_registry, RandomPolicy};

    fn records_equal(a: &[RoundRecord], b: &[RoundRecord]) -> bool {
        let line = |r: &RoundRecord| serde_json::to_string(r).expect("serializes");
        a.len() == b.len() && a.iter().zip(b).all(|(x, y)| line(x) == line(y))
    }

    #[test]
    fn checkpoint_envelope_roundtrips_and_rejects_tampering() {
        let dir = std::env::temp_dir().join(format!("autofl-ckpt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("unit.ckpt.json");
        let payload = serde::Value::Map(vec![
            ("x".to_string(), 3usize.to_value()),
            ("y".to_string(), serde::Value::Str("hello".into())),
        ]);
        write_checkpoint(&path, payload.clone()).unwrap();
        assert_eq!(read_checkpoint(&path).unwrap(), payload);

        // Flip one payload byte: the digest must catch it.
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, text.replace("hello", "jello")).unwrap();
        let err = read_checkpoint(&path).unwrap_err();
        assert!(err.to_string().contains("digest mismatch"), "{err}");

        // Unknown version: refused, not misread.
        write_checkpoint(&path, payload).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, text.replace("\"version\":1", "\"version\":999")).unwrap();
        let err = read_checkpoint(&path).unwrap_err();
        assert!(err.to_string().contains("version 999"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stepped_run_matches_run_policy() {
        let config = SimConfig::tiny_test(3);
        let mut run = ExperimentRun::new(&config, &RandomPolicy, None).unwrap();
        while run.step().unwrap().is_some() {}
        let stepped = run.into_result();
        let straight = crate::policy::run_policy(&config, &RandomPolicy);
        assert_eq!(stepped.policy, straight.policy);
        assert!(records_equal(&stepped.records, &straight.records));
    }

    #[test]
    fn lockstep_checkpoint_resume_is_bit_identical() {
        let config = SimConfig::tiny_test(5);
        // Uninterrupted reference.
        let mut reference = ExperimentRun::new(&config, &RandomPolicy, None).unwrap();
        while reference.step().unwrap().is_some() {}
        let reference = reference.into_result();

        // Kill after 3 records, resume from the snapshot.
        let mut first = ExperimentRun::new(&config, &RandomPolicy, None).unwrap();
        for _ in 0..3 {
            first.step().unwrap().unwrap();
        }
        let snapshot = first.state_snapshot();
        drop(first);
        let mut resumed = ExperimentRun::resume(&config, &RandomPolicy, None, &snapshot).unwrap();
        while resumed.step().unwrap().is_some() {}
        let resumed = resumed.into_result();
        assert!(records_equal(&reference.records, &resumed.records));
    }

    #[test]
    fn controller_grows_under_target_and_shrinks_over() {
        let config = SimConfig::tiny_test(1);
        let target = ConvergeTarget::EnergyBudget {
            joules_per_round: 100.0,
        };
        let mut ctrl = ConvergenceController::new(target, GlobalParams::new(8, 1, 6), &config);
        let record = |energy: f64| RoundRecord {
            round: 0,
            participants: Vec::new(),
            plans: Vec::new(),
            round_time_s: 1.0,
            active_energy_j: energy,
            idle_energy_j: 0.0,
            accuracy: 0.5,
            dropped: Vec::new(),
            update_fractions: Vec::new(),
            dropouts: Vec::new(),
            ineligible: 0,
            dispatch_time_s: 0.0,
            logical_time_s: 1.0,
            mean_staleness: 0.0,
            net: None,
            adversarial: None,
            flagged: None,
        };
        // Far over budget: K must shrink.
        for _ in 0..10 {
            ctrl.observe(&record(500.0));
        }
        assert!(ctrl.params().num_participants < 6, "{:?}", ctrl.params());
        // Far under budget: K must recover and grow past the base.
        for _ in 0..40 {
            ctrl.observe(&record(10.0));
        }
        assert!(ctrl.params().num_participants > 6, "{:?}", ctrl.params());
        // Never outside the valid range.
        assert!(ctrl.params().num_participants <= config.num_devices);
    }

    #[test]
    fn accuracy_floor_direction_matches_the_sign_convention() {
        let target = ConvergeTarget::AccuracyFloor { accuracy: 0.8 };
        let below = RoundRecord {
            round: 0,
            participants: Vec::new(),
            plans: Vec::new(),
            round_time_s: 1.0,
            active_energy_j: 1.0,
            idle_energy_j: 0.0,
            accuracy: 0.5,
            dropped: Vec::new(),
            update_fractions: Vec::new(),
            dropouts: Vec::new(),
            ineligible: 0,
            dispatch_time_s: 0.0,
            logical_time_s: 1.0,
            mean_staleness: 0.0,
            net: None,
            adversarial: None,
            flagged: None,
        };
        let (actual, tgt) = target.get_actual_and_target(&below);
        assert!(actual < tgt, "below the floor must read as below target");
        assert_eq!(target.converge_target_string(), "accuracy_floor(0.8)");
        let budget = ConvergeTarget::EnergyBudget {
            joules_per_round: 100.0,
        };
        let (actual, tgt) = budget.get_actual_and_target(&below);
        assert!(
            actual < tgt,
            "an under-budget round must read as below target (headroom to grow)"
        );
    }

    #[test]
    fn controlled_run_checkpoint_carries_the_controller() {
        let mut config = SimConfig::tiny_test(8);
        config.target_accuracy = Some(1.1); // record the full horizon
        config.max_rounds = 12;
        // tiny_test spends ~0.15 J/round at K=4; a 0.05 J budget is a
        // ~3× overshoot the controller must answer by shrinking K.
        let control = Some(ConvergeTarget::EnergyBudget {
            joules_per_round: 0.05,
        });
        let mut reference = ExperimentRun::new(&config, &RandomPolicy, control).unwrap();
        while reference.step().unwrap().is_some() {}
        let final_k = reference.params().num_participants;
        assert!(
            final_k < 4,
            "an over-tight budget must shrink K from 4, got {final_k}"
        );
        let reference = reference.into_result();

        let mut first = ExperimentRun::new(&config, &RandomPolicy, control).unwrap();
        for _ in 0..5 {
            first.step().unwrap().unwrap();
        }
        let snapshot = first.state_snapshot();
        let mut resumed =
            ExperimentRun::resume(&config, &RandomPolicy, control, &snapshot).unwrap();
        while resumed.step().unwrap().is_some() {}
        assert!(records_equal(
            &reference.records,
            &resumed.into_result().records
        ));
    }

    #[test]
    fn resume_rejects_a_mismatched_policy_or_controller() {
        let config = SimConfig::tiny_test(2);
        let mut run = ExperimentRun::new(&config, &RandomPolicy, None).unwrap();
        run.step().unwrap().unwrap();
        let snapshot = run.state_snapshot();

        let registry = baseline_registry();
        let other = registry.expect("Performance");
        let err = ExperimentRun::resume(&config, other, None, &snapshot).unwrap_err();
        assert!(err.to_string().contains("belongs to policy"), "{err}");

        let control = Some(ConvergeTarget::AccuracyFloor { accuracy: 0.5 });
        let err = ExperimentRun::resume(&config, &RandomPolicy, control, &snapshot).unwrap_err();
        assert!(err.to_string().contains("controller"), "{err}");
    }

    #[test]
    fn serve_once_drains_a_queued_job() {
        let root = std::env::temp_dir().join(format!("autofl-serve-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(root.join("queue")).unwrap();
        let mut config = SimConfig::tiny_test(4);
        config.max_rounds = 3;
        config.target_accuracy = Some(1.1);
        let spec = ExperimentSpec::new("smoke", config, ["FedAvg-Random", "Performance"], 2);
        std::fs::write(root.join("queue/smoke.json"), spec.to_json()).unwrap();

        let opts = ServeOptions {
            once: true,
            ..ServeOptions::new(&root)
        };
        let report = serve(&baseline_registry(), &opts).unwrap();
        assert_eq!(report, ServeReport { jobs: 1, units: 4 });
        // The queue entry became a finished job with traces + summary.
        assert!(!root.join("queue/smoke.json").exists());
        assert!(!root.join("active/smoke").exists());
        let done = root.join("done/smoke");
        assert!(done.join("spec.json").is_file());
        assert!(done.join("summary.json").is_file());
        for unit in [
            "FedAvg-Random-r0",
            "Performance-r0",
            "FedAvg-Random-r1",
            "Performance-r1",
        ] {
            let trace = done.join("traces").join(format!("{unit}.jsonl"));
            let text = std::fs::read_to_string(&trace).unwrap();
            assert_eq!(text.lines().count(), 3, "{unit} should run 3 rounds");
        }
        // Checkpoints of completed units are cleaned up with the job.
        assert!(!done.join("state").exists());

        // The trace bytes equal a straight in-process run of the same unit.
        let mut config = spec.config.clone();
        config.seed = spec.config.seed.wrapping_add(1);
        let result = crate::policy::run_policy(&config, &RandomPolicy);
        let expected: String = result
            .records
            .iter()
            .map(|r| format!("{}\n", serde_json::to_string(r).unwrap()))
            .collect();
        let trace = done.join("traces/FedAvg-Random-r1.jsonl");
        assert_eq!(std::fs::read_to_string(trace).unwrap(), expected);
        std::fs::remove_dir_all(&root).unwrap();
    }
}

//! Accuracy engines: how a round's cohort turns into a new global test
//! accuracy.
//!
//! Two engines implement [`AccuracyEngine`]:
//!
//! * [`RealTrainingEngine`] actually trains the workload's scaled-down
//!   model (`autofl-nn`) on the partitioned synthetic data and evaluates on
//!   the held-out test set. This is the ground truth used by tests,
//!   examples and small benches.
//! * [`SurrogateEngine`] is a learning-curve model whose inputs are exactly
//!   the cohort statistics the paper identifies as driving convergence
//!   (effective samples, class coverage, label divergence, aggregation
//!   robustness). It makes the 1000-round × many-policy figure sweeps
//!   tractable; an integration test checks its ordering agrees with real
//!   training.

use crate::adversary::{AdversaryConfig, AdversaryRole};
use crate::algorithms::{AggregationAlgorithm, ClientUpdate};
use crate::fabric::UpdateCodec;
use autofl_data::FlData;
use autofl_device::fleet::DeviceId;
use autofl_nn::optim::Sgd;
use autofl_nn::zoo::Workload;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use serde::Serialize;

/// Statistics of the cohort whose updates were aggregated in a round.
#[derive(Debug, Clone)]
pub struct CohortStats {
    /// Devices whose updates were aggregated (stragglers dropped by the
    /// algorithm are excluded).
    pub participants: Vec<DeviceId>,
    /// Fraction of the nominal local work each participant completed
    /// (1.0 = full `E` epochs; partial updates are smaller), aligned with
    /// `participants`.
    pub update_fractions: Vec<f64>,
    /// Σ local_samples × fraction across participants.
    pub effective_samples: f64,
    /// Fraction of label classes covered by the cohort, in `[0, 1]`.
    pub class_coverage: f64,
    /// L1 divergence of the cohort's *joint* label distribution from
    /// uniform, in `[0, 2]`.
    pub divergence: f64,
    /// Sample-weighted mean of the *per-member* label divergences, in
    /// `[0, 2]`. Unlike the joint divergence this does not cancel when
    /// oppositely-skewed devices are mixed; it drives the client-drift
    /// penalty.
    pub mean_member_divergence: f64,
    /// Local epochs `E` configured for the round.
    pub local_epochs: usize,
    /// Mini-batch size `B`.
    pub batch_size: usize,
    /// Severity-weighted share of the cohort's effective update mass
    /// controlled by active poisoners (label-flippers, gradient
    /// scalers), in `[0, 1]`. Exactly `0.0` whenever the adversary
    /// subsystem is off, so honest runs take no poison branch at all.
    pub poison: f64,
}

/// Maps a cohort to the next global accuracy.
pub trait AccuracyEngine: Send {
    /// Current global test accuracy in `[0, 1]`.
    fn accuracy(&self) -> f64;

    /// Applies one aggregation round and returns the new accuracy.
    fn apply_round(&mut self, stats: &CohortStats) -> f64;

    /// Engine name for reports.
    fn name(&self) -> &'static str;

    /// Serializes the engine's mutable state (whatever `apply_round`
    /// advances) for a checkpoint: the surrogate's accuracy + noise
    /// stream, the real engine's global model + optimizer carry-overs.
    fn state_snapshot(&self) -> serde::Value;

    /// Restores state captured by
    /// [`AccuracyEngine::state_snapshot`] onto an engine freshly built
    /// from the same configuration.
    fn state_restore(&mut self, value: &serde::Value) -> Result<(), serde::Error>;
}

fn state_field<T: serde::Deserialize>(value: &serde::Value, name: &str) -> Result<T, serde::Error> {
    T::from_value(serde::field_or_null(value, name)).map_err(|e| e.at(name))
}

/// Cohort drift below this level is benign: oppositely-skewed updates
/// average out and the aggregation neither regresses nor caps convergence.
/// Shared by the surrogate's penalty and the oracle's composition score so
/// the oracle optimises the same landscape the surrogate simulates.
pub const DRIFT_KNEE: f64 = 0.40;

/// Workload-specific convergence constants shared by both engines.
#[derive(Debug, Clone, Copy)]
pub struct ConvergenceProfile {
    /// Accuracy an ideal run approaches.
    pub max_accuracy: f64,
    /// The experiment's "converged" threshold.
    pub target_accuracy: f64,
    /// Per-round progress rate with an ideal cohort.
    pub base_rate: f64,
    /// Starting (random-guess) accuracy.
    pub initial_accuracy: f64,
}

impl ConvergenceProfile {
    /// The profile for a workload. Rates are set so that ideal IID runs
    /// converge in roughly the paper's 200–300 rounds and the relative
    /// difficulty ordering (CNN < LSTM < MobileNet) holds.
    pub fn for_workload(workload: Workload) -> Self {
        match workload {
            Workload::CnnMnist => ConvergenceProfile {
                max_accuracy: 0.975,
                target_accuracy: 0.92,
                base_rate: 0.016,
                initial_accuracy: 0.10,
            },
            Workload::LstmShakespeare => ConvergenceProfile {
                max_accuracy: 0.58,
                target_accuracy: 0.50,
                base_rate: 0.013,
                initial_accuracy: 1.0 / 65.0,
            },
            Workload::MobileNetImageNet => ConvergenceProfile {
                max_accuracy: 0.72,
                target_accuracy: 0.62,
                base_rate: 0.010,
                initial_accuracy: 0.10,
            },
            Workload::TinyTest => ConvergenceProfile {
                max_accuracy: 0.95,
                target_accuracy: 0.85,
                base_rate: 0.05,
                initial_accuracy: 0.25,
            },
        }
    }
}

/// The learning-curve surrogate.
///
/// Per round, accuracy moves toward a cohort-dependent ceiling:
///
/// ```text
/// quality  = coverage² · (1 − (1 − robustness) · divergence / 2)
/// rate     = base_rate · min(1, √(effective / nominal)) · min(1, E/E_ref)
/// ceiling  = max_acc · (0.25 + 0.75 · (coverage + robustness·(1−coverage)/2))
/// acc'     = acc + rate · quality · (ceiling − acc) − regression + noise
/// ```
///
/// where `regression` penalises extremely skewed cohorts (the paper's
/// "naively including non-IID participants can significantly deteriorate
/// model convergence") and `noise` is a small seeded Gaussian.
#[derive(Debug, Clone)]
pub struct SurrogateEngine {
    profile: ConvergenceProfile,
    acc: f64,
    nominal_samples: f64,
    nominal_epochs: f64,
    robustness: f64,
    /// How much poisoned update mass the aggregation rule filters out
    /// ([`AggregationAlgorithm::poison_robustness`]); derived from the
    /// configuration, so it is not part of the checkpointed state.
    poison_robustness: f64,
    rng: SmallRng,
}

impl SurrogateEngine {
    /// Creates the surrogate.
    ///
    /// `nominal_samples` is the effective-sample count of a full ideal
    /// cohort (`K × samples_per_device`); `nominal_epochs` the reference
    /// `E` (the paper's S-settings use 5–10).
    pub fn new(
        workload: Workload,
        algorithm: AggregationAlgorithm,
        nominal_samples: f64,
        nominal_epochs: f64,
        seed: u64,
    ) -> Self {
        let profile = ConvergenceProfile::for_workload(workload);
        SurrogateEngine {
            profile,
            acc: profile.initial_accuracy,
            nominal_samples: nominal_samples.max(1.0),
            nominal_epochs: nominal_epochs.max(1.0),
            robustness: algorithm.heterogeneity_robustness(),
            poison_robustness: algorithm.poison_robustness(),
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// The convergence profile in use.
    pub fn profile(&self) -> ConvergenceProfile {
        self.profile
    }
}

impl AccuracyEngine for SurrogateEngine {
    fn accuracy(&self) -> f64 {
        self.acc
    }

    fn apply_round(&mut self, stats: &CohortStats) -> f64 {
        if stats.participants.is_empty() || stats.effective_samples <= 0.0 {
            // Nothing aggregated: accuracy holds (plus measurement noise).
            self.acc = (self.acc + self.rng.gen_range(-0.0005..0.0005))
                .clamp(0.0, self.profile.max_accuracy);
            return self.acc;
        }
        let coverage = stats.class_coverage.clamp(0.0, 1.0);
        let divergence = stats.divergence.clamp(0.0, 2.0);
        let exposure = 1.0 - self.robustness;
        let quality = (coverage * coverage) * (1.0 - exposure * divergence / 2.0).max(0.05);
        let sample_factor = (stats.effective_samples / self.nominal_samples)
            .sqrt()
            .min(1.0);
        let epoch_factor = (stats.local_epochs as f64 / self.nominal_epochs).min(1.0);
        let rate = self.profile.base_rate * sample_factor * (0.5 + 0.5 * epoch_factor);
        let eff_coverage = coverage + self.robustness * (1.0 - coverage) / 2.0;
        // Client drift: skewed *members* cap the reachable accuracy — the
        // FedAvg failure mode of Figure 11(c)/(d). The cap is modulated by
        // how balanced the cohort's *union* is: oppositely-skewed clients
        // partially cancel, so a selection policy that composes a
        // complementary cohort (AutoFL, the oracles) escapes the penalty a
        // random cohort of the same members suffers. Robust aggregation
        // (FedNova/FEDL/FedProx) shrinks the exposure.
        let member_div = stats.mean_member_divergence.clamp(0.0, 2.0);
        let balance = 1.0 - divergence / 2.0;
        let drift = (member_div / 2.0) * (1.0 - 0.35 * balance);
        let drift_excess = (drift - DRIFT_KNEE).max(0.0);
        let drift_penalty = 0.9 * exposure * drift_excess / (1.0 - DRIFT_KNEE);
        let mut ceiling = self.profile.max_accuracy
            * (0.25 + 0.75 * eff_coverage)
            * (1.0 - drift_penalty).max(0.2);
        // Drifted aggregations actively regress the model (local epochs on
        // 1–2 classes corrupt shared features), so heavily-skewed cohorts
        // equilibrate *below* the target instead of ratcheting toward it.
        let mut regression =
            rate * exposure * self.acc * (0.5 * (divergence - 1.0).max(0.0) + 6.0 * drift_excess);
        // Poison impact: the share of hostile update mass the aggregation
        // rule fails to filter both caps the reachable accuracy (the
        // model keeps re-learning flipped labels) and actively regresses
        // it in proportion to current accuracy. The regression is
        // quadratic in the surviving share: the sliver leaking past an
        // order-statistics rule is a second-order perturbation, while the
        // full poisoned mass a linear rule averages in dominates the
        // gradient signal. `stats.poison` is exactly 0.0 whenever the
        // adversary subsystem is off, so honest runs never enter this
        // branch and stay bit-identical.
        let surviving_poison = ((1.0 - self.poison_robustness) * stats.poison).clamp(0.0, 1.0);
        if surviving_poison > 0.0 {
            ceiling *= (1.0 - 0.75 * surviving_poison).max(0.1);
            regression += rate * self.acc * 4.0 * surviving_poison * surviving_poison;
        }
        let noise = self.rng.gen_range(-0.0008..0.0008);
        self.acc = (self.acc + rate * quality * (ceiling - self.acc) - regression + noise)
            .clamp(0.0, self.profile.max_accuracy);
        self.acc
    }

    fn name(&self) -> &'static str {
        "surrogate"
    }

    fn state_snapshot(&self) -> serde::Value {
        serde::Value::Map(vec![
            ("acc".to_string(), self.acc.to_value()),
            ("rng".to_string(), self.rng.state().to_vec().to_value()),
        ])
    }

    fn state_restore(&mut self, value: &serde::Value) -> Result<(), serde::Error> {
        self.acc = state_field(value, "acc")?;
        let words: Vec<u64> = state_field(value, "rng")?;
        let state: [u64; 4] = words
            .try_into()
            .map_err(|_| serde::Error::custom("surrogate rng state must have 4 words").at("rng"))?;
        self.rng = SmallRng::from_state(state);
        Ok(())
    }
}

/// Ground truth: real federated training of the scaled-down model.
pub struct RealTrainingEngine {
    workload: Workload,
    data: FlData,
    algorithm: AggregationAlgorithm,
    global: Vec<f32>,
    lr: f32,
    eval_samples: usize,
    acc: f64,
    seed: u64,
    /// Global-gradient estimate from the previous round (FEDL's linear
    /// term); empty until the first aggregation.
    prev_global_grad: Vec<f32>,
    /// Rounds aggregated so far; mixed into every round's client seeds so
    /// each round draws a fresh minibatch ordering.
    rounds_applied: u64,
    /// Shard count of the hierarchical aggregation tree (bit-identical
    /// results at any value — see
    /// [`AggregationAlgorithm::aggregate_sharded`]).
    shards: usize,
    /// Network-fabric update codec: each client delta goes through the
    /// real encode→decode round trip before aggregation. `None` without
    /// a fabric.
    codec: Option<Box<dyn UpdateCodec>>,
    /// Adversarial fleet roles: poisoners actually train on flipped
    /// labels, scalers multiply their real deltas, free-riders return
    /// zero-work updates without training. `None` — the default — takes
    /// no adversary branch anywhere.
    adversary: Option<AdversaryConfig>,
}

impl std::fmt::Debug for RealTrainingEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RealTrainingEngine")
            .field("workload", &self.workload.name())
            .field("algorithm", &self.algorithm.name())
            .field("acc", &self.acc)
            .finish()
    }
}

impl RealTrainingEngine {
    /// Creates the engine around a federated dataset. `shards` sets the
    /// hierarchical-aggregation tree width (1 = flat; results are
    /// bit-identical at any value). `codec` — when a network fabric is
    /// attached — runs every client delta through the real encode→decode
    /// round trip before aggregation.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        workload: Workload,
        data: FlData,
        algorithm: AggregationAlgorithm,
        lr: f32,
        eval_samples: usize,
        seed: u64,
        shards: usize,
        codec: Option<Box<dyn UpdateCodec>>,
        adversary: Option<AdversaryConfig>,
    ) -> Self {
        let mut model = workload.build_trainable(seed);
        let global = model.param_vector();
        let mut engine = RealTrainingEngine {
            workload,
            data,
            algorithm,
            global,
            lr,
            eval_samples,
            acc: 0.0,
            seed,
            prev_global_grad: Vec::new(),
            rounds_applied: 0,
            shards: shards.max(1),
            codec,
            adversary,
        };
        engine.acc = engine.evaluate();
        engine
    }

    /// Evaluates the current global model on (a prefix of) the test set.
    pub fn evaluate(&mut self) -> f64 {
        let mut model = self.workload.build_trainable(self.seed);
        model.set_param_vector(&self.global);
        let n = self.data.test.len().min(self.eval_samples.max(1));
        let idx: Vec<usize> = (0..n).collect();
        let (x, y) = self.data.test.batch(&idx);
        let (_, acc) = model.evaluate(&x, &y);
        acc as f64
    }

    /// Runs local training for one participant and returns its update.
    fn train_client(
        &self,
        device: DeviceId,
        fraction: f64,
        batch_size: usize,
        round_seed: u64,
    ) -> Option<ClientUpdate> {
        let indices = self.data.partition.device_indices(device.0);
        if indices.is_empty() {
            return None;
        }
        // Adversary role of this client — a pure function of
        // `(seed, device)`, matching the engine-side assignment exactly.
        let role = self
            .adversary
            .map_or(AdversaryRole::Honest, |a| a.role_of(self.seed, device.0));
        if role == AdversaryRole::FreeRider {
            // A free-rider performs no training: it uploads a zero delta
            // claiming its full sample count, hoping to ride the cohort's
            // aggregate. (The engine zeroes its update mass server-side.)
            return Some(ClientUpdate {
                delta: vec![0.0; self.global.len()],
                num_samples: indices.len(),
                local_steps: 1,
            });
        }
        let mut model = self.workload.build_trainable(self.seed);
        model.set_param_vector(&self.global);
        let mut sgd = Sgd::new(self.lr).with_clip_norm(5.0);
        let mut rng = SmallRng::seed_from_u64(round_seed ^ (device.0 as u64).wrapping_mul(0x9e37));

        // FedProx proximal pull and FEDL linear term need the anchor.
        let anchor = self.global.clone();
        let fedl_grad = match self.algorithm {
            AggregationAlgorithm::Fedl { .. } if !self.prev_global_grad.is_empty() => {
                Some(self.prev_global_grad.clone())
            }
            _ => None,
        };

        // `fraction` already folds in the local epochs E: fraction 1.0 of
        // one epoch's batches times E is the nominal step count; partial
        // updates run a prefix.
        let batches_per_epoch = indices.len().div_ceil(batch_size).max(1);
        let steps = ((batches_per_epoch as f64) * fraction).ceil().max(1.0) as usize;

        let mut taken = 0usize;
        'outer: loop {
            for (x, mut y) in self.data.train.minibatches(indices, batch_size, &mut rng) {
                if taken >= steps {
                    break 'outer;
                }
                // Label-flipping poisoner: trains on y → C−1−y, producing
                // a well-formed but misdirected delta — the *actual*
                // corrupted update enters aggregation below.
                if role == AdversaryRole::Poisoner {
                    let c = self.data.train.num_classes();
                    for label in &mut y {
                        *label = c - 1 - *label;
                    }
                }
                let logits = model.forward(&x, true);
                let (_, grad) = autofl_nn::loss::softmax_cross_entropy(&logits, &y);
                model.zero_grad();
                let _ = model.backward(&grad);
                // Algorithm-specific gradient shaping.
                match self.algorithm {
                    AggregationAlgorithm::FedProx { mu } => {
                        let mut off = 0;
                        model.visit_params(&mut |p, g| {
                            for (i, (gv, pv)) in
                                g.data_mut().iter_mut().zip(p.data().iter()).enumerate()
                            {
                                *gv += mu * (pv - anchor[off + i]);
                            }
                            off += p.len();
                        });
                    }
                    AggregationAlgorithm::Fedl { eta } => {
                        if let Some(gg) = &fedl_grad {
                            let mut off = 0;
                            model.visit_params(&mut |p, g| {
                                for (i, gv) in g.data_mut().iter_mut().enumerate() {
                                    *gv += eta * gg[off + i];
                                }
                                off += p.len();
                            });
                        }
                    }
                    _ => {}
                }
                sgd.step(&mut model);
                taken += 1;
            }
            if taken >= steps {
                break;
            }
        }

        let after = model.param_vector();
        let mut delta: Vec<f32> = after
            .iter()
            .zip(self.global.iter())
            .map(|(a, g)| a - g)
            .collect();
        // Scaled-gradient attacker: honest training, delta blown up (or
        // inverted) by the configured factor on the way out.
        if role == AdversaryRole::Scaler {
            let factor = self.adversary.map_or(1.0, |a| a.scale_factor) as f32;
            for d in &mut delta {
                *d *= factor;
            }
        }
        Some(ClientUpdate {
            delta,
            num_samples: indices.len(),
            local_steps: taken,
        })
    }
}

impl AccuracyEngine for RealTrainingEngine {
    fn accuracy(&self) -> f64 {
        self.acc
    }

    fn apply_round(&mut self, stats: &CohortStats) -> f64 {
        // Unique per round (not merely per cohort size): reusing a round
        // seed would replay identical minibatch orderings every round.
        let round_seed = self
            .seed
            .wrapping_mul(0xa076_1d64_78bd_642f)
            .wrapping_add(self.rounds_applied.wrapping_mul(0x9e37_79b9_7f4a_7c15))
            .wrapping_add(stats.participants.len() as u64);
        // The codec's stochastic-rounding streams are keyed on the
        // aggregation step (not the dispatch round — under the async
        // runtime several cohorts may share a step), matching how this
        // engine keys its own minibatch seeds.
        let agg_step = self.rounds_applied as usize;
        self.rounds_applied += 1;
        // Local epochs scale the work fraction: fraction 1.0 means E
        // epochs. Every client trains against the same frozen global
        // snapshot with its own RNG stream (seeded from round and device
        // id), so local training fans out across the pool and the
        // updates — collected in participant order — are bit-identical at
        // any thread count.
        let this: &Self = self;
        let mut maybe_updates: Vec<Option<ClientUpdate>> = (0..stats.participants.len())
            .into_par_iter()
            .map(|i| {
                let work = stats.update_fractions[i] * stats.local_epochs as f64;
                this.train_client(stats.participants[i], work, stats.batch_size, round_seed)
            })
            .collect();
        // Fabric codec: each delta takes the real encode→decode round
        // trip before it touches the aggregator (so FEDL's gradient
        // estimate sees the transported bits too). Per-device tagged
        // streams (`TAG_CODEC`), sequential in participant order —
        // bit-identical at any thread or shard count.
        if let Some(codec) = &self.codec {
            for (i, update) in maybe_updates.iter_mut().enumerate() {
                if let Some(u) = update {
                    let mut rng =
                        crate::fabric::codec_stream(self.seed, agg_step, stats.participants[i].0);
                    codec.transcode(&mut u.delta, agg_step, &mut rng);
                }
            }
        }
        let updates: Vec<ClientUpdate> = maybe_updates.into_iter().flatten().collect();
        if updates.is_empty() {
            return self.acc;
        }
        // FEDL global-gradient estimate: step-normalised average delta
        // scaled by -1/lr (delta ≈ -lr Σ grads).
        let mut gg = vec![0.0f32; self.global.len()];
        for u in &updates {
            let w = 1.0 / (updates.len() as f32 * u.local_steps.max(1) as f32 * self.lr);
            for (g, d) in gg.iter_mut().zip(u.delta.iter()) {
                *g -= w * d;
            }
        }
        self.prev_global_grad = gg;
        // Two-level hierarchical aggregation: per-shard exact partial
        // sums combined in shard order — bit-equal to flat FedAvg at any
        // shard count (the exact-summation contract in `algorithms`).
        self.algorithm
            .aggregate_sharded(&mut self.global, &updates, self.shards);
        self.acc = self.evaluate();
        self.acc
    }

    fn name(&self) -> &'static str {
        "real-training"
    }

    fn state_snapshot(&self) -> serde::Value {
        serde::Value::Map(vec![
            ("acc".to_string(), self.acc.to_value()),
            ("global".to_string(), self.global.to_value()),
            (
                "prev_global_grad".to_string(),
                self.prev_global_grad.to_value(),
            ),
            ("rounds_applied".to_string(), self.rounds_applied.to_value()),
        ])
    }

    fn state_restore(&mut self, value: &serde::Value) -> Result<(), serde::Error> {
        let global: Vec<f32> = state_field(value, "global")?;
        if global.len() != self.global.len() {
            return Err(serde::Error::custom(format!(
                "global model has {} parameters, checkpoint holds {}",
                self.global.len(),
                global.len()
            ))
            .at("global"));
        }
        self.acc = state_field(value, "acc")?;
        self.global = global;
        self.prev_global_grad = state_field(value, "prev_global_grad")?;
        self.rounds_applied = state_field(value, "rounds_applied")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autofl_data::partition::DataDistribution;

    fn ideal_stats(k: usize, samples: f64) -> CohortStats {
        CohortStats {
            participants: (0..k).map(DeviceId).collect(),
            update_fractions: vec![1.0; k],
            effective_samples: samples,
            class_coverage: 1.0,
            divergence: 0.05,
            mean_member_divergence: 0.05,
            local_epochs: 5,
            batch_size: 16,
            poison: 0.0,
        }
    }

    #[test]
    fn surrogate_converges_on_ideal_cohorts() {
        let mut e = SurrogateEngine::new(
            Workload::CnnMnist,
            AggregationAlgorithm::FedAvg,
            4000.0,
            5.0,
            1,
        );
        for _ in 0..400 {
            e.apply_round(&ideal_stats(20, 4000.0));
        }
        assert!(
            e.accuracy() > e.profile().target_accuracy,
            "stalled at {}",
            e.accuracy()
        );
    }

    #[test]
    fn surrogate_stalls_on_skewed_cohorts() {
        let mut e = SurrogateEngine::new(
            Workload::CnnMnist,
            AggregationAlgorithm::FedAvg,
            4000.0,
            5.0,
            2,
        );
        let skewed = CohortStats {
            class_coverage: 0.35,
            divergence: 1.5,
            mean_member_divergence: 1.6,
            ..ideal_stats(20, 4000.0)
        };
        for _ in 0..1000 {
            e.apply_round(&skewed);
        }
        assert!(
            e.accuracy() < e.profile().target_accuracy,
            "skewed cohort should not converge, got {}",
            e.accuracy()
        );
    }

    #[test]
    fn robust_algorithms_tolerate_heterogeneity_better() {
        let run = |alg: AggregationAlgorithm| {
            let mut e = SurrogateEngine::new(Workload::CnnMnist, alg, 4000.0, 5.0, 3);
            let stats = CohortStats {
                class_coverage: 0.6,
                divergence: 0.9,
                mean_member_divergence: 1.3,
                ..ideal_stats(20, 4000.0)
            };
            for _ in 0..300 {
                e.apply_round(&stats);
            }
            e.accuracy()
        };
        let fedavg = run(AggregationAlgorithm::FedAvg);
        let fednova = run(AggregationAlgorithm::FedNova);
        assert!(
            fednova > fedavg + 0.02,
            "FedNova {} vs FedAvg {}",
            fednova,
            fedavg
        );
    }

    #[test]
    fn surrogate_more_samples_converges_faster() {
        let rounds_to = |samples: f64| {
            let mut e = SurrogateEngine::new(
                Workload::TinyTest,
                AggregationAlgorithm::FedAvg,
                1000.0,
                5.0,
                4,
            );
            for r in 0..1000 {
                e.apply_round(&ideal_stats(10, samples));
                if e.accuracy() >= e.profile().target_accuracy {
                    return r;
                }
            }
            1000
        };
        assert!(rounds_to(1000.0) < rounds_to(100.0));
    }

    #[test]
    fn real_training_improves_accuracy_on_tiny_workload() {
        let data = FlData::generate(Workload::TinyTest, 4, 24, 64, DataDistribution::IidIdeal, 5);
        let mut e = RealTrainingEngine::new(
            Workload::TinyTest,
            data,
            AggregationAlgorithm::FedAvg,
            0.08,
            64,
            5,
            1,
            None,
            None,
        );
        let start = e.accuracy();
        let stats = CohortStats {
            participants: (0..4).map(DeviceId).collect(),
            update_fractions: vec![1.0; 4],
            effective_samples: 96.0,
            class_coverage: 1.0,
            divergence: 0.0,
            mean_member_divergence: 0.0,
            local_epochs: 2,
            batch_size: 16,
            poison: 0.0,
        };
        for _ in 0..10 {
            e.apply_round(&stats);
        }
        assert!(
            e.accuracy() > start + 0.2,
            "accuracy {} -> {}",
            start,
            e.accuracy()
        );
    }
}

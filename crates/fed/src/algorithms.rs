//! Gradient aggregation algorithms: FedAvg and the comparators the paper
//! evaluates against (FedProx, FedNova, FEDL), plus the two-level
//! hierarchical aggregation path used at fleet scale.
//!
//! # Hierarchical aggregation and exact summation
//!
//! At production scale the server does not fold a million client updates
//! into the global model one by one: shards of clients pre-combine their
//! weighted deltas and the coordinator merges the per-shard partials.
//! Floating-point addition is not associative, so a naive two-level sum
//! would make the global model depend on the shard count — poison for
//! this workspace's bit-reproducibility contract. The partial
//! accumulators here ([`ExactF32Sum`]) therefore sum the `f32` terms in
//! **exact fixed-point arithmetic** (a 320-bit integer spanning the full
//! `f32` exponent range): integer addition is associative and
//! commutative, so any grouping of updates into shards — and any merge
//! order — produces the *same* accumulated value, and
//! [`AggregationAlgorithm::aggregate_sharded`] is bit-identical to the
//! flat [`AggregationAlgorithm::aggregate`] for every shard count
//! (pinned by a property test over random shard counts in
//! `tests/scale_invariance.rs`).

use autofl_device::store::shard_extents;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// A client's contribution to one aggregation round.
#[derive(Debug, Clone)]
pub struct ClientUpdate {
    /// Parameter delta `w_local − w_global` after local training.
    pub delta: Vec<f32>,
    /// Number of local training samples.
    pub num_samples: usize,
    /// Number of local SGD steps actually taken (partial updates take
    /// fewer).
    pub local_steps: usize,
}

/// The server-side aggregation rule (plus the client-side objective it
/// implies).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum AggregationAlgorithm {
    /// FedAvg (McMahan et al.): sample-weighted averaging of deltas.
    /// Stragglers past the round deadline are dropped.
    #[default]
    FedAvg,
    /// FedProx (Li et al.): FedAvg aggregation plus a client-side proximal
    /// term `µ/2‖w − w_global‖²`; accepts partial updates from stragglers.
    FedProx {
        /// Proximal coefficient µ.
        mu: f32,
    },
    /// FedNova (Wang et al.): normalises each client's delta by its number
    /// of local steps before averaging, removing objective inconsistency
    /// from heterogeneous step counts; accepts partial updates.
    FedNova,
    /// FEDL (Dinh et al.): clients solve a local approximation controlled
    /// by `eta`; aggregation averages the approximate solutions; accepts
    /// partial updates.
    Fedl {
        /// Local approximation accuracy parameter η.
        eta: f32,
    },
}

impl AggregationAlgorithm {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            AggregationAlgorithm::FedAvg => "FedAvg",
            AggregationAlgorithm::FedProx { .. } => "FedProx",
            AggregationAlgorithm::FedNova => "FedNova",
            AggregationAlgorithm::Fedl { .. } => "FEDL",
        }
    }

    /// Whether stragglers may submit partial updates (fewer local steps)
    /// instead of being dropped.
    pub fn accepts_partial_updates(&self) -> bool {
        !matches!(self, AggregationAlgorithm::FedAvg)
    }

    /// How strongly the algorithm suppresses the harm of heterogeneous
    /// (non-IID, uneven-step) updates, in `[0, 1]`. Consumed by the
    /// surrogate accuracy engine; 0 means fully exposed (FedAvg).
    ///
    /// Ordering follows the paper's Section 6.3: FedNova and FEDL are
    /// "robust to data heterogeneity by giving less weight to gradient
    /// updates from non-IID devices", with FedNova slightly ahead.
    pub fn heterogeneity_robustness(&self) -> f64 {
        match self {
            AggregationAlgorithm::FedAvg => 0.0,
            AggregationAlgorithm::FedProx { .. } => 0.40,
            AggregationAlgorithm::FedNova => 0.55,
            AggregationAlgorithm::Fedl { .. } => 0.50,
        }
    }

    /// The per-update aggregation weights this rule assigns (sample
    /// fractions for FedAvg/FedProx/FEDL; step-normalised sample
    /// fractions rescaled by the effective step count for FedNova).
    ///
    /// Weights are computed once over the full cohort in update order —
    /// never per shard — so sharded aggregation sees exactly the flat
    /// path's coefficients.
    fn update_weights(&self, updates: &[ClientUpdate]) -> Vec<f32> {
        let total: f64 = updates.iter().map(|u| u.num_samples as f64).sum();
        match self {
            AggregationAlgorithm::FedAvg
            | AggregationAlgorithm::FedProx { .. }
            | AggregationAlgorithm::Fedl { .. } => updates
                .iter()
                .map(|u| (u.num_samples as f64 / total) as f32)
                .collect(),
            AggregationAlgorithm::FedNova => {
                // Normalise by local steps, then re-scale by the effective
                // step count so the update magnitude matches homogeneous
                // FedAvg: Δ = τ_eff · Σ p_i · (Δ_i / τ_i).
                let tau_eff: f64 = updates
                    .iter()
                    .map(|u| u.num_samples as f64 / total * u.local_steps.max(1) as f64)
                    .sum();
                updates
                    .iter()
                    .map(|u| {
                        (u.num_samples as f64 / total * tau_eff / u.local_steps.max(1) as f64)
                            as f32
                    })
                    .collect()
            }
        }
    }

    /// Applies the aggregation rule to the global parameter vector
    /// (single-shard [`AggregationAlgorithm::aggregate_sharded`]).
    ///
    /// # Panics
    ///
    /// Panics if any update's delta length differs from the global
    /// vector, or any weighted delta term is non-finite.
    pub fn aggregate(&self, global: &mut [f32], updates: &[ClientUpdate]) {
        self.aggregate_sharded(global, updates, 1);
    }

    /// Two-level hierarchical aggregation: updates are grouped into
    /// `shards` contiguous ranges, each shard folds its weighted deltas
    /// into an exact partial accumulator (in parallel), and the partials
    /// merge into the global model in shard order.
    ///
    /// Because the partial sums are exact ([`ExactF32Sum`]), the result
    /// is **bit-identical for every shard count** — `shards` tunes
    /// parallelism and the simulated server topology, never the model.
    ///
    /// # Panics
    ///
    /// Panics if any update's delta length differs from the global
    /// vector, or any weighted delta term is non-finite.
    pub fn aggregate_sharded(&self, global: &mut [f32], updates: &[ClientUpdate], shards: usize) {
        if updates.is_empty() {
            return;
        }
        for u in updates {
            assert_eq!(u.delta.len(), global.len(), "client delta length mismatch");
        }
        let weights = self.update_weights(updates);
        // Per-shard partial aggregates, fanned out across the pool. The
        // term `w · d` is rounded to f32 exactly as the flat inner loop
        // would compute it, so grouping cannot change the terms — and the
        // exact accumulator means grouping cannot change their sum.
        let extents = shard_extents(updates.len(), shards);
        let mut partials: Vec<Vec<ExactF32Sum>> = extents
            .par_iter()
            .map(|&(offset, len)| {
                let mut acc = vec![ExactF32Sum::default(); global.len()];
                for u in offset..offset + len {
                    let w = weights[u];
                    for (a, d) in acc.iter_mut().zip(updates[u].delta.iter()) {
                        a.add(w * d);
                    }
                }
                acc
            })
            .collect();
        // Global combine: exact merge in shard order (any order would
        // give the same bits — integer addition commutes).
        let mut combined = partials.swap_remove(0);
        for partial in &partials {
            for (a, b) in combined.iter_mut().zip(partial.iter()) {
                a.merge(b);
            }
        }
        for (g, a) in global.iter_mut().zip(combined.iter()) {
            *g = (f64::from(*g) + a.to_f64()) as f32;
        }
    }
}

/// Number of 64-bit digit windows an [`ExactF32Sum`] spans: the scaled
/// `f32` integer range is 278 bits (24-bit significands shifted by up to
/// 254 exponent steps), so five windows hold every term with headroom for
/// trillions of additions before any digit could saturate.
const ACC_DIGITS: usize = 5;

/// An exact accumulator for sums of finite `f32` values.
///
/// Every `f32` is an integer multiple of `2⁻¹⁴⁹`; the accumulator stores
/// the running sum as that integer, split into 64-bit digit windows held
/// in `i128` lanes (so carries never need propagating during
/// accumulation). Addition of integers is associative and commutative,
/// which is the property hierarchical aggregation needs: *any* grouping
/// of the same terms produces the same accumulated value, bit for bit.
/// [`ExactF32Sum::to_f64`] rounds the exact integer back to the nearest
/// representable `f64` once, at the end.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExactF32Sum {
    digits: [i128; ACC_DIGITS],
}

impl ExactF32Sum {
    /// Adds one term exactly.
    ///
    /// # Panics
    ///
    /// Panics on a non-finite term: infinities and NaNs have no integer
    /// representation, and silently poisoning an exact sum would defeat
    /// its purpose. (Client deltas are gradient-clipped upstream, so a
    /// non-finite term is always a bug.)
    #[inline]
    pub fn add(&mut self, term: f32) {
        assert!(term.is_finite(), "exact summation requires finite terms");
        if term == 0.0 {
            return;
        }
        let bits = term.to_bits();
        let exp = (bits >> 23) & 0xff;
        let frac = bits & 0x7f_ffff;
        // value = m · 2^(shift − 149): normals carry the implicit bit and
        // a biased exponent; subnormals are already plain integers.
        let (m, shift) = if exp == 0 {
            (u128::from(frac), 0u32)
        } else {
            (u128::from(frac | 0x80_0000), exp - 1)
        };
        let digit = (shift / 64) as usize;
        let wide = m << (shift % 64); // ≤ 2^87, fits u128
        let lo = (wide & u128::from(u64::MAX)) as i128;
        let hi = (wide >> 64) as i128;
        if bits >> 31 == 1 {
            self.digits[digit] -= lo;
            self.digits[digit + 1] -= hi;
        } else {
            self.digits[digit] += lo;
            self.digits[digit + 1] += hi;
        }
    }

    /// Merges another accumulator into this one — exact, so the merge
    /// order can never matter.
    #[inline]
    pub fn merge(&mut self, other: &ExactF32Sum) {
        for (a, b) in self.digits.iter_mut().zip(other.digits.iter()) {
            *a += b;
        }
    }

    /// Rounds the exact sum to `f64`.
    ///
    /// The digit lanes are first normalised (carries propagated, a global
    /// sign extracted) so the conversion is a monotone Horner walk over
    /// same-sign digits — no catastrophic cancellation between lanes. The
    /// result is a pure function of the exact integer value.
    pub fn to_f64(&self) -> f64 {
        let mut digits = self.digits;
        carry_propagate(&mut digits);
        let negative = digits[ACC_DIGITS - 1] < 0;
        if negative {
            for d in digits.iter_mut() {
                *d = -*d;
            }
            carry_propagate(&mut digits);
        }
        let mut magnitude = 0.0f64;
        for &d in digits.iter().rev() {
            magnitude = magnitude * 1.844_674_407_370_955_2e19 + d as f64; // · 2^64
        }
        let value = magnitude * 2.0f64.powi(-149);
        if negative {
            -value
        } else {
            value
        }
    }
}

/// Normalises digit lanes so every lane but the last lies in
/// `[0, 2^64)`; the top lane carries the sign.
fn carry_propagate(digits: &mut [i128; ACC_DIGITS]) {
    for i in 0..ACC_DIGITS - 1 {
        let carry = digits[i] >> 64; // arithmetic shift: floor division
        digits[i] -= carry << 64;
        digits[i + 1] += carry;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn update(delta: Vec<f32>, samples: usize, steps: usize) -> ClientUpdate {
        ClientUpdate {
            delta,
            num_samples: samples,
            local_steps: steps,
        }
    }

    #[test]
    fn fedavg_weights_by_samples() {
        let mut global = vec![0.0f32; 2];
        AggregationAlgorithm::FedAvg.aggregate(
            &mut global,
            &[
                update(vec![1.0, 0.0], 30, 10),
                update(vec![0.0, 1.0], 10, 10),
            ],
        );
        assert!((global[0] - 0.75).abs() < 1e-6);
        assert!((global[1] - 0.25).abs() < 1e-6);
    }

    #[test]
    fn fednova_equalises_unequal_steps() {
        // Two clients with equal data but one ran 4x the steps (and thus a
        // ~4x delta). FedNova should not let the long-runner dominate.
        let mut nova = vec![0.0f32; 1];
        AggregationAlgorithm::FedNova.aggregate(
            &mut nova,
            &[update(vec![4.0], 10, 40), update(vec![1.0], 10, 10)],
        );
        let mut avg = vec![0.0f32; 1];
        AggregationAlgorithm::FedAvg.aggregate(
            &mut avg,
            &[update(vec![4.0], 10, 40), update(vec![1.0], 10, 10)],
        );
        // FedAvg sees (4+1)/2 = 2.5; FedNova sees per-step 0.1 each,
        // tau_eff = 25 -> 2.5... with equal per-step progress they agree;
        // the difference appears when per-step progress is unequal.
        assert!((avg[0] - 2.5).abs() < 1e-6);
        assert!((nova[0] - 2.5).abs() < 1e-6);

        // Unequal per-step progress: straggler contributed 10 of 40 steps.
        let mut nova2 = vec![0.0f32; 1];
        AggregationAlgorithm::FedNova.aggregate(
            &mut nova2,
            &[update(vec![1.0], 10, 10), update(vec![4.0], 10, 40)],
        );
        let mut avg2 = vec![0.0f32; 1];
        AggregationAlgorithm::FedAvg.aggregate(
            &mut avg2,
            &[update(vec![1.0], 10, 10), update(vec![4.0], 10, 40)],
        );
        assert_eq!(nova2, nova);
        assert_eq!(avg2, avg);
    }

    #[test]
    fn fednova_normalised_direction_is_step_fair() {
        // One client took 1 step of size 1, another 100 steps totalling 1.
        // FedNova weights their *per-step* progress equally.
        let mut nova = vec![0.0f32; 1];
        AggregationAlgorithm::FedNova.aggregate(
            &mut nova,
            &[update(vec![1.0], 10, 1), update(vec![1.0], 10, 100)],
        );
        // per-step: 1.0 and 0.01; tau_eff = 50.5; delta = 50.5*(0.5*1 + 0.5*0.01) = 25.5
        assert!((nova[0] - 25.502_5).abs() < 1e-3, "got {}", nova[0]);
    }

    #[test]
    fn partial_update_policy_matches_paper() {
        assert!(!AggregationAlgorithm::FedAvg.accepts_partial_updates());
        assert!(AggregationAlgorithm::FedNova.accepts_partial_updates());
        assert!(AggregationAlgorithm::FedProx { mu: 0.01 }.accepts_partial_updates());
        assert!(AggregationAlgorithm::Fedl { eta: 0.1 }.accepts_partial_updates());
    }

    #[test]
    fn empty_round_is_a_no_op() {
        let mut global = vec![1.0f32, 2.0];
        AggregationAlgorithm::FedAvg.aggregate(&mut global, &[]);
        assert_eq!(global, vec![1.0, 2.0]);
    }

    #[test]
    fn exact_sum_is_order_and_grouping_invariant() {
        // Terms engineered so floating-point addition order matters:
        // a plain f32/f64 left fold gives different results for the two
        // orders; the exact accumulator must not.
        let terms = [
            1.0e30f32,
            -1.0e30,
            1.5e-40, // subnormal
            3.25,
            -7.125e10,
            1.0e-20,
            f32::MAX / 4.0,
            -f32::MAX / 4.0,
        ];
        let mut fwd = ExactF32Sum::default();
        for t in terms {
            fwd.add(t);
        }
        let mut rev = ExactF32Sum::default();
        for t in terms.iter().rev() {
            rev.add(*t);
        }
        assert_eq!(fwd, rev);
        // Grouped: two partials merged.
        let mut a = ExactF32Sum::default();
        let mut b = ExactF32Sum::default();
        for (i, t) in terms.iter().enumerate() {
            if i % 2 == 0 {
                a.add(*t);
            } else {
                b.add(*t);
            }
        }
        a.merge(&b);
        assert_eq!(a, fwd);
        assert_eq!(a.to_f64().to_bits(), fwd.to_f64().to_bits());
    }

    #[test]
    fn exact_sum_survives_catastrophic_cancellation() {
        // f32::MAX/2 − f32::MAX/2 + tiny: a float accumulator visiting
        // the large terms first loses `tiny` entirely only if it rounds;
        // the exact path recovers it regardless of order.
        let tiny = 1.0e-42f32; // subnormal
        let mut acc = ExactF32Sum::default();
        acc.add(f32::MAX / 2.0);
        acc.add(tiny);
        acc.add(-f32::MAX / 2.0);
        assert_eq!(acc.to_f64(), f64::from(tiny));
        // Exact negative values round-trip through the sign handling.
        let mut neg = ExactF32Sum::default();
        neg.add(-3.5);
        neg.add(1.25);
        assert_eq!(neg.to_f64(), -2.25);
        assert_eq!(ExactF32Sum::default().to_f64(), 0.0);
    }

    #[test]
    #[should_panic(expected = "finite terms")]
    fn exact_sum_rejects_non_finite_terms() {
        ExactF32Sum::default().add(f32::NAN);
    }

    #[test]
    fn sharded_aggregation_matches_flat_for_every_shard_count() {
        let updates: Vec<ClientUpdate> = (0..13)
            .map(|i| {
                update(
                    (0..9)
                        .map(|j| ((i * 31 + j * 17) % 23) as f32 * 0.37 - 4.0)
                        .collect(),
                    10 + i * 3,
                    1 + (i % 5),
                )
            })
            .collect();
        for algorithm in [
            AggregationAlgorithm::FedAvg,
            AggregationAlgorithm::FedNova,
            AggregationAlgorithm::FedProx { mu: 0.01 },
        ] {
            let mut flat = vec![0.5f32; 9];
            algorithm.aggregate(&mut flat, &updates);
            for shards in [2, 3, 5, 13, 40] {
                let mut sharded = vec![0.5f32; 9];
                algorithm.aggregate_sharded(&mut sharded, &updates, shards);
                let flat_bits: Vec<u32> = flat.iter().map(|v| v.to_bits()).collect();
                let sharded_bits: Vec<u32> = sharded.iter().map(|v| v.to_bits()).collect();
                assert_eq!(flat_bits, sharded_bits, "{} at {shards}", algorithm.name());
            }
        }
    }
}

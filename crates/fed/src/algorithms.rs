//! Gradient aggregation algorithms: FedAvg and the comparators the paper
//! evaluates against (FedProx, FedNova, FEDL).

use serde::{Deserialize, Serialize};

/// A client's contribution to one aggregation round.
#[derive(Debug, Clone)]
pub struct ClientUpdate {
    /// Parameter delta `w_local − w_global` after local training.
    pub delta: Vec<f32>,
    /// Number of local training samples.
    pub num_samples: usize,
    /// Number of local SGD steps actually taken (partial updates take
    /// fewer).
    pub local_steps: usize,
}

/// The server-side aggregation rule (plus the client-side objective it
/// implies).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum AggregationAlgorithm {
    /// FedAvg (McMahan et al.): sample-weighted averaging of deltas.
    /// Stragglers past the round deadline are dropped.
    #[default]
    FedAvg,
    /// FedProx (Li et al.): FedAvg aggregation plus a client-side proximal
    /// term `µ/2‖w − w_global‖²`; accepts partial updates from stragglers.
    FedProx {
        /// Proximal coefficient µ.
        mu: f32,
    },
    /// FedNova (Wang et al.): normalises each client's delta by its number
    /// of local steps before averaging, removing objective inconsistency
    /// from heterogeneous step counts; accepts partial updates.
    FedNova,
    /// FEDL (Dinh et al.): clients solve a local approximation controlled
    /// by `eta`; aggregation averages the approximate solutions; accepts
    /// partial updates.
    Fedl {
        /// Local approximation accuracy parameter η.
        eta: f32,
    },
}

impl AggregationAlgorithm {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            AggregationAlgorithm::FedAvg => "FedAvg",
            AggregationAlgorithm::FedProx { .. } => "FedProx",
            AggregationAlgorithm::FedNova => "FedNova",
            AggregationAlgorithm::Fedl { .. } => "FEDL",
        }
    }

    /// Whether stragglers may submit partial updates (fewer local steps)
    /// instead of being dropped.
    pub fn accepts_partial_updates(&self) -> bool {
        !matches!(self, AggregationAlgorithm::FedAvg)
    }

    /// How strongly the algorithm suppresses the harm of heterogeneous
    /// (non-IID, uneven-step) updates, in `[0, 1]`. Consumed by the
    /// surrogate accuracy engine; 0 means fully exposed (FedAvg).
    ///
    /// Ordering follows the paper's Section 6.3: FedNova and FEDL are
    /// "robust to data heterogeneity by giving less weight to gradient
    /// updates from non-IID devices", with FedNova slightly ahead.
    pub fn heterogeneity_robustness(&self) -> f64 {
        match self {
            AggregationAlgorithm::FedAvg => 0.0,
            AggregationAlgorithm::FedProx { .. } => 0.40,
            AggregationAlgorithm::FedNova => 0.55,
            AggregationAlgorithm::Fedl { .. } => 0.50,
        }
    }

    /// Applies the aggregation rule to the global parameter vector.
    ///
    /// # Panics
    ///
    /// Panics if any update's delta length differs from the global vector.
    pub fn aggregate(&self, global: &mut [f32], updates: &[ClientUpdate]) {
        if updates.is_empty() {
            return;
        }
        for u in updates {
            assert_eq!(u.delta.len(), global.len(), "client delta length mismatch");
        }
        match self {
            AggregationAlgorithm::FedAvg
            | AggregationAlgorithm::FedProx { .. }
            | AggregationAlgorithm::Fedl { .. } => {
                // Sample-weighted mean of deltas.
                let total: f64 = updates.iter().map(|u| u.num_samples as f64).sum();
                for u in updates {
                    let w = (u.num_samples as f64 / total) as f32;
                    for (g, d) in global.iter_mut().zip(u.delta.iter()) {
                        *g += w * d;
                    }
                }
            }
            AggregationAlgorithm::FedNova => {
                // Normalise by local steps, then re-scale by the effective
                // step count so the update magnitude matches homogeneous
                // FedAvg: Δ = τ_eff · Σ p_i · (Δ_i / τ_i).
                let total: f64 = updates.iter().map(|u| u.num_samples as f64).sum();
                let tau_eff: f64 = updates
                    .iter()
                    .map(|u| u.num_samples as f64 / total * u.local_steps.max(1) as f64)
                    .sum();
                for u in updates {
                    let w = (u.num_samples as f64 / total * tau_eff / u.local_steps.max(1) as f64)
                        as f32;
                    for (g, d) in global.iter_mut().zip(u.delta.iter()) {
                        *g += w * d;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn update(delta: Vec<f32>, samples: usize, steps: usize) -> ClientUpdate {
        ClientUpdate {
            delta,
            num_samples: samples,
            local_steps: steps,
        }
    }

    #[test]
    fn fedavg_weights_by_samples() {
        let mut global = vec![0.0f32; 2];
        AggregationAlgorithm::FedAvg.aggregate(
            &mut global,
            &[
                update(vec![1.0, 0.0], 30, 10),
                update(vec![0.0, 1.0], 10, 10),
            ],
        );
        assert!((global[0] - 0.75).abs() < 1e-6);
        assert!((global[1] - 0.25).abs() < 1e-6);
    }

    #[test]
    fn fednova_equalises_unequal_steps() {
        // Two clients with equal data but one ran 4x the steps (and thus a
        // ~4x delta). FedNova should not let the long-runner dominate.
        let mut nova = vec![0.0f32; 1];
        AggregationAlgorithm::FedNova.aggregate(
            &mut nova,
            &[update(vec![4.0], 10, 40), update(vec![1.0], 10, 10)],
        );
        let mut avg = vec![0.0f32; 1];
        AggregationAlgorithm::FedAvg.aggregate(
            &mut avg,
            &[update(vec![4.0], 10, 40), update(vec![1.0], 10, 10)],
        );
        // FedAvg sees (4+1)/2 = 2.5; FedNova sees per-step 0.1 each,
        // tau_eff = 25 -> 2.5... with equal per-step progress they agree;
        // the difference appears when per-step progress is unequal.
        assert!((avg[0] - 2.5).abs() < 1e-6);
        assert!((nova[0] - 2.5).abs() < 1e-6);

        // Unequal per-step progress: straggler contributed 10 of 40 steps.
        let mut nova2 = vec![0.0f32; 1];
        AggregationAlgorithm::FedNova.aggregate(
            &mut nova2,
            &[update(vec![1.0], 10, 10), update(vec![4.0], 10, 40)],
        );
        let mut avg2 = vec![0.0f32; 1];
        AggregationAlgorithm::FedAvg.aggregate(
            &mut avg2,
            &[update(vec![1.0], 10, 10), update(vec![4.0], 10, 40)],
        );
        assert_eq!(nova2, nova);
        assert_eq!(avg2, avg);
    }

    #[test]
    fn fednova_normalised_direction_is_step_fair() {
        // One client took 1 step of size 1, another 100 steps totalling 1.
        // FedNova weights their *per-step* progress equally.
        let mut nova = vec![0.0f32; 1];
        AggregationAlgorithm::FedNova.aggregate(
            &mut nova,
            &[update(vec![1.0], 10, 1), update(vec![1.0], 10, 100)],
        );
        // per-step: 1.0 and 0.01; tau_eff = 50.5; delta = 50.5*(0.5*1 + 0.5*0.01) = 25.5
        assert!((nova[0] - 25.502_5).abs() < 1e-3, "got {}", nova[0]);
    }

    #[test]
    fn partial_update_policy_matches_paper() {
        assert!(!AggregationAlgorithm::FedAvg.accepts_partial_updates());
        assert!(AggregationAlgorithm::FedNova.accepts_partial_updates());
        assert!(AggregationAlgorithm::FedProx { mu: 0.01 }.accepts_partial_updates());
        assert!(AggregationAlgorithm::Fedl { eta: 0.1 }.accepts_partial_updates());
    }

    #[test]
    fn empty_round_is_a_no_op() {
        let mut global = vec![1.0f32, 2.0];
        AggregationAlgorithm::FedAvg.aggregate(&mut global, &[]);
        assert_eq!(global, vec![1.0, 2.0]);
    }
}

//! Gradient aggregation algorithms: FedAvg and the comparators the paper
//! evaluates against (FedProx, FedNova, FEDL), the Byzantine-robust
//! aggregators (coordinate-wise median, trimmed mean, Krum), and the
//! two-level hierarchical aggregation path used at fleet scale.
//!
//! # The aggregator trait
//!
//! [`AggregationAlgorithm`] is the serializable *spec* of a rule — the
//! thing configs and experiment files carry. The behaviour lives behind
//! the [`Aggregator`] trait, lowered via
//! [`AggregationAlgorithm::build_aggregator`] (the same spec→behaviour
//! split as `CodecSpec → UpdateCodec` in [`crate::fabric`]). The split
//! exists because the linear rules and the order-statistics rules have
//! fundamentally different sharding stories:
//!
//! * **Linear rules** (FedAvg, FedProx, FedNova, FEDL) are weighted sums,
//!   so per-shard partials reduce to one [`ExactF32Sum`] per coordinate
//!   and merge exactly — [`LinearAggregator`].
//! * **Order-statistics rules** (median, trimmed mean) cannot reduce a
//!   shard to a running sum: the only partial state that combines exactly
//!   is the multiset of submitted values itself. Concatenating the shard
//!   partials in any order feeds the same multiset to the sort, so the
//!   two-level combine is still exact — the implementations compute the
//!   flat statistic directly at every shard count and still honour
//!   [`Aggregator::exact_sharded`].
//! * **Krum** scores every update against every other, which no per-shard
//!   state can carry; it declares itself flat-only
//!   (`exact_sharded() == false`) and configuration validation rejects it
//!   with `shards > 1`.
//!
//! # Hierarchical aggregation and exact summation
//!
//! At production scale the server does not fold a million client updates
//! into the global model one by one: shards of clients pre-combine their
//! weighted deltas and the coordinator merges the per-shard partials.
//! Floating-point addition is not associative, so a naive two-level sum
//! would make the global model depend on the shard count — poison for
//! this workspace's bit-reproducibility contract. The partial
//! accumulators here ([`ExactF32Sum`]) therefore sum the `f32` terms in
//! **exact fixed-point arithmetic** (a 320-bit integer spanning the full
//! `f32` exponent range): integer addition is associative and
//! commutative, so any grouping of updates into shards — and any merge
//! order — produces the *same* accumulated value, and
//! [`AggregationAlgorithm::aggregate_sharded`] is bit-identical to the
//! flat [`AggregationAlgorithm::aggregate`] for every shard count
//! (pinned by a property test over random shard counts in
//! `tests/scale_invariance.rs`).

use autofl_device::store::shard_extents;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// A client's contribution to one aggregation round.
#[derive(Debug, Clone)]
pub struct ClientUpdate {
    /// Parameter delta `w_local − w_global` after local training.
    pub delta: Vec<f32>,
    /// Number of local training samples.
    pub num_samples: usize,
    /// Number of local SGD steps actually taken (partial updates take
    /// fewer).
    pub local_steps: usize,
}

/// The server-side aggregation rule (plus the client-side objective it
/// implies).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum AggregationAlgorithm {
    /// FedAvg (McMahan et al.): sample-weighted averaging of deltas.
    /// Stragglers past the round deadline are dropped.
    #[default]
    FedAvg,
    /// FedProx (Li et al.): FedAvg aggregation plus a client-side proximal
    /// term `µ/2‖w − w_global‖²`; accepts partial updates from stragglers.
    FedProx {
        /// Proximal coefficient µ.
        mu: f32,
    },
    /// FedNova (Wang et al.): normalises each client's delta by its number
    /// of local steps before averaging, removing objective inconsistency
    /// from heterogeneous step counts; accepts partial updates.
    FedNova,
    /// FEDL (Dinh et al.): clients solve a local approximation controlled
    /// by `eta`; aggregation averages the approximate solutions; accepts
    /// partial updates.
    Fedl {
        /// Local approximation accuracy parameter η.
        eta: f32,
    },
    /// Coordinate-wise median (robust): each global coordinate moves by
    /// the median of the submitted deltas at that coordinate, ignoring
    /// sample weights. Tolerates up to half the cohort sending arbitrary
    /// values per coordinate.
    Median,
    /// Coordinate-wise trimmed mean (robust): per coordinate, the
    /// `⌊trim·n⌋` lowest and highest values are discarded and the rest
    /// are sample-weight averaged with the surviving weight mass
    /// renormalised. `trim = 0` keeps every value and is bit-identical
    /// to FedAvg.
    TrimmedMean {
        /// Fraction of updates trimmed from *each* end per coordinate,
        /// in `[0, 0.5)`.
        trim: f64,
    },
    /// Krum (Blanchard et al.): selects the single submitted update whose
    /// summed squared distance to its closest peers is smallest and
    /// applies it verbatim. Scores every update against every other, so
    /// it is flat-only (`shards` must stay 1; validation enforces this).
    Krum,
}

impl AggregationAlgorithm {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            AggregationAlgorithm::FedAvg => "FedAvg",
            AggregationAlgorithm::FedProx { .. } => "FedProx",
            AggregationAlgorithm::FedNova => "FedNova",
            AggregationAlgorithm::Fedl { .. } => "FEDL",
            AggregationAlgorithm::Median => "Median",
            AggregationAlgorithm::TrimmedMean { .. } => "TrimmedMean",
            AggregationAlgorithm::Krum => "Krum",
        }
    }

    /// Whether stragglers may submit partial updates (fewer local steps)
    /// instead of being dropped. Only classic FedAvg drops them; the
    /// robust aggregators tolerate shrunken updates by construction
    /// (order statistics treat them as any other value).
    pub fn accepts_partial_updates(&self) -> bool {
        !matches!(self, AggregationAlgorithm::FedAvg)
    }

    /// How strongly the algorithm suppresses the harm of heterogeneous
    /// (non-IID, uneven-step) updates, in `[0, 1]`. Consumed by the
    /// surrogate accuracy engine; 0 means fully exposed (FedAvg).
    ///
    /// Ordering follows the paper's Section 6.3: FedNova and FEDL are
    /// "robust to data heterogeneity by giving less weight to gradient
    /// updates from non-IID devices", with FedNova slightly ahead. The
    /// order-statistics aggregators damp outlier *coordinates*, which
    /// helps moderately against skew; Krum keeps a single client's
    /// update per round and therefore averages nothing away.
    pub fn heterogeneity_robustness(&self) -> f64 {
        match self {
            AggregationAlgorithm::FedAvg => 0.0,
            AggregationAlgorithm::FedProx { .. } => 0.40,
            AggregationAlgorithm::FedNova => 0.55,
            AggregationAlgorithm::Fedl { .. } => 0.50,
            AggregationAlgorithm::Median => 0.45,
            AggregationAlgorithm::TrimmedMean { .. } => 0.35,
            AggregationAlgorithm::Krum => 0.15,
        }
    }

    /// How strongly the rule suppresses *actively poisoned* update mass
    /// (label-flipping, scaled gradients), in `[0, 1]`. Consumed by the
    /// surrogate's poison-impact term ([`crate::accuracy`]). The linear
    /// rules trust every update (0); median and Krum discard outliers
    /// almost entirely; the trimmed mean's defense grows with its trim
    /// fraction and vanishes at `trim = 0`, where it *is* FedAvg.
    pub fn poison_robustness(&self) -> f64 {
        match self {
            AggregationAlgorithm::FedAvg
            | AggregationAlgorithm::FedProx { .. }
            | AggregationAlgorithm::FedNova
            | AggregationAlgorithm::Fedl { .. } => 0.0,
            AggregationAlgorithm::Median => 0.85,
            AggregationAlgorithm::TrimmedMean { trim } => (2.0 * trim).clamp(0.0, 0.8),
            AggregationAlgorithm::Krum => 0.90,
        }
    }

    /// Whether [`AggregationAlgorithm::aggregate_sharded`] is bit-equal
    /// to the flat path at every shard count (an exact two-level combine
    /// exists). Flat-only rules are rejected by configuration validation
    /// when `shards > 1`.
    pub fn exact_sharded(&self) -> bool {
        !matches!(self, AggregationAlgorithm::Krum)
    }

    /// Lowers the spec to its behaviour — the aggregation counterpart of
    /// `CodecSpec::build` in [`crate::fabric`].
    pub fn build_aggregator(&self) -> Box<dyn Aggregator> {
        match self {
            AggregationAlgorithm::FedAvg
            | AggregationAlgorithm::FedProx { .. }
            | AggregationAlgorithm::FedNova
            | AggregationAlgorithm::Fedl { .. } => Box::new(LinearAggregator { spec: *self }),
            AggregationAlgorithm::Median => Box::new(MedianAggregator),
            AggregationAlgorithm::TrimmedMean { trim } => {
                Box::new(TrimmedMeanAggregator { trim: *trim })
            }
            AggregationAlgorithm::Krum => Box::new(KrumAggregator),
        }
    }

    /// Applies the aggregation rule to the global parameter vector
    /// (single-shard [`AggregationAlgorithm::aggregate_sharded`]).
    ///
    /// # Panics
    ///
    /// Panics if any update's delta length differs from the global
    /// vector, or any delta term is non-finite.
    pub fn aggregate(&self, global: &mut [f32], updates: &[ClientUpdate]) {
        self.aggregate_sharded(global, updates, 1);
    }

    /// Two-level hierarchical aggregation through the rule's
    /// [`Aggregator`]: updates are grouped into `shards` contiguous
    /// ranges whose partials combine exactly, so the result is
    /// **bit-identical for every shard count** wherever
    /// [`AggregationAlgorithm::exact_sharded`] holds — `shards` tunes
    /// parallelism and the simulated server topology, never the model.
    ///
    /// # Panics
    ///
    /// Panics if any update's delta length differs from the global
    /// vector, any delta term is non-finite, or a flat-only rule (Krum)
    /// is asked for `shards > 1`.
    pub fn aggregate_sharded(&self, global: &mut [f32], updates: &[ClientUpdate], shards: usize) {
        self.build_aggregator()
            .aggregate_sharded(global, updates, shards);
    }
}

/// Server-side aggregation behaviour, lowered from the serializable
/// [`AggregationAlgorithm`] spec via
/// [`AggregationAlgorithm::build_aggregator`].
///
/// # Contract
///
/// * `aggregate_sharded(global, updates, 1)` and `aggregate(global,
///   updates)` are the same computation.
/// * If [`Aggregator::exact_sharded`] returns `true`, `aggregate_sharded`
///   is bit-identical at every `shards` value: the per-shard partial
///   state must combine exactly (an exact accumulator, or the raw value
///   multiset). If it returns `false` the implementation may reject
///   `shards > 1`; [`crate::builder::SimBuilder`] validation refuses such
///   configurations up front.
/// * Aggregating an empty cohort is a no-op; every update's delta must
///   match the global vector's length and contain only finite terms.
/// * The metadata methods agree with the spec enum's methods of the same
///   name.
pub trait Aggregator: Send + Sync + std::fmt::Debug {
    /// Display name (matches [`AggregationAlgorithm::name`]).
    fn name(&self) -> &'static str;
    /// See [`AggregationAlgorithm::accepts_partial_updates`].
    fn accepts_partial_updates(&self) -> bool;
    /// See [`AggregationAlgorithm::heterogeneity_robustness`].
    fn heterogeneity_robustness(&self) -> f64;
    /// See [`AggregationAlgorithm::poison_robustness`].
    fn poison_robustness(&self) -> f64;
    /// See [`AggregationAlgorithm::exact_sharded`].
    fn exact_sharded(&self) -> bool;
    /// Folds the cohort's updates into the global vector across `shards`
    /// partials.
    fn aggregate_sharded(&self, global: &mut [f32], updates: &[ClientUpdate], shards: usize);
    /// Flat aggregation (`shards == 1`).
    fn aggregate(&self, global: &mut [f32], updates: &[ClientUpdate]) {
        self.aggregate_sharded(global, updates, 1);
    }
}

/// FedAvg-family sample-fraction weights, computed once over the full
/// cohort in update order — never per shard — so sharded aggregation
/// sees exactly the flat path's coefficients. Shared by the linear path
/// and the trimmed mean (whose `trim = 0` case must reproduce FedAvg bit
/// for bit).
fn sample_fraction_weights(updates: &[ClientUpdate]) -> Vec<f32> {
    let total: f64 = updates.iter().map(|u| u.num_samples as f64).sum();
    updates
        .iter()
        .map(|u| (u.num_samples as f64 / total) as f32)
        .collect()
}

fn assert_deltas_conform(global: &[f32], updates: &[ClientUpdate]) {
    for u in updates {
        assert_eq!(u.delta.len(), global.len(), "client delta length mismatch");
    }
}

/// The weighted-sum rules (FedAvg, FedProx, FedNova, FEDL) on the exact
/// hierarchical summation path.
#[derive(Debug, Clone, Copy)]
pub struct LinearAggregator {
    spec: AggregationAlgorithm,
}

impl LinearAggregator {
    /// The per-update aggregation weights this rule assigns (sample
    /// fractions for FedAvg/FedProx/FEDL; step-normalised sample
    /// fractions rescaled by the effective step count for FedNova).
    fn update_weights(&self, updates: &[ClientUpdate]) -> Vec<f32> {
        match self.spec {
            AggregationAlgorithm::FedNova => {
                // Normalise by local steps, then re-scale by the effective
                // step count so the update magnitude matches homogeneous
                // FedAvg: Δ = τ_eff · Σ p_i · (Δ_i / τ_i).
                let total: f64 = updates.iter().map(|u| u.num_samples as f64).sum();
                let tau_eff: f64 = updates
                    .iter()
                    .map(|u| u.num_samples as f64 / total * u.local_steps.max(1) as f64)
                    .sum();
                updates
                    .iter()
                    .map(|u| {
                        (u.num_samples as f64 / total * tau_eff / u.local_steps.max(1) as f64)
                            as f32
                    })
                    .collect()
            }
            _ => sample_fraction_weights(updates),
        }
    }
}

impl Aggregator for LinearAggregator {
    fn name(&self) -> &'static str {
        self.spec.name()
    }
    fn accepts_partial_updates(&self) -> bool {
        self.spec.accepts_partial_updates()
    }
    fn heterogeneity_robustness(&self) -> f64 {
        self.spec.heterogeneity_robustness()
    }
    fn poison_robustness(&self) -> f64 {
        self.spec.poison_robustness()
    }
    fn exact_sharded(&self) -> bool {
        true
    }

    fn aggregate_sharded(&self, global: &mut [f32], updates: &[ClientUpdate], shards: usize) {
        if updates.is_empty() {
            return;
        }
        assert_deltas_conform(global, updates);
        let weights = self.update_weights(updates);
        // Per-shard partial aggregates, fanned out across the pool. The
        // term `w · d` is rounded to f32 exactly as the flat inner loop
        // would compute it, so grouping cannot change the terms — and the
        // exact accumulator means grouping cannot change their sum.
        let extents = shard_extents(updates.len(), shards);
        let mut partials: Vec<Vec<ExactF32Sum>> = extents
            .par_iter()
            .map(|&(offset, len)| {
                let mut acc = vec![ExactF32Sum::default(); global.len()];
                for u in offset..offset + len {
                    let w = weights[u];
                    for (a, d) in acc.iter_mut().zip(updates[u].delta.iter()) {
                        a.add(w * d);
                    }
                }
                acc
            })
            .collect();
        // Global combine: exact merge in shard order (any order would
        // give the same bits — integer addition commutes).
        let mut combined = partials.swap_remove(0);
        for partial in &partials {
            for (a, b) in combined.iter_mut().zip(partial.iter()) {
                a.merge(b);
            }
        }
        for (g, a) in global.iter_mut().zip(combined.iter()) {
            *g = (f64::from(*g) + a.to_f64()) as f32;
        }
    }
}

/// Coordinate-wise median. The per-shard partial is the multiset of
/// submitted values itself — concatenation is an exact combine — so the
/// implementation sorts each coordinate's full column directly and is
/// bit-identical at every shard count; parallelism fans out across
/// coordinates instead of shards.
#[derive(Debug, Clone, Copy)]
pub struct MedianAggregator;

impl Aggregator for MedianAggregator {
    fn name(&self) -> &'static str {
        "Median"
    }
    fn accepts_partial_updates(&self) -> bool {
        true
    }
    fn heterogeneity_robustness(&self) -> f64 {
        AggregationAlgorithm::Median.heterogeneity_robustness()
    }
    fn poison_robustness(&self) -> f64 {
        AggregationAlgorithm::Median.poison_robustness()
    }
    fn exact_sharded(&self) -> bool {
        true
    }

    fn aggregate_sharded(&self, global: &mut [f32], updates: &[ClientUpdate], _shards: usize) {
        if updates.is_empty() {
            return;
        }
        assert_deltas_conform(global, updates);
        let n = updates.len();
        let steps: Vec<f32> = (0..global.len())
            .into_par_iter()
            .with_min_len(256)
            .map(|j| {
                let mut column: Vec<f32> = updates
                    .iter()
                    .map(|u| {
                        let v = u.delta[j];
                        assert!(v.is_finite(), "median aggregation requires finite deltas");
                        v
                    })
                    .collect();
                // A total order makes the result permutation-invariant.
                column.sort_by(f32::total_cmp);
                if n % 2 == 1 {
                    column[n / 2]
                } else {
                    ((f64::from(column[n / 2 - 1]) + f64::from(column[n / 2])) / 2.0) as f32
                }
            })
            .collect();
        for (g, s) in global.iter_mut().zip(steps.iter()) {
            *g = (f64::from(*g) + f64::from(*s)) as f32;
        }
    }
}

/// Coordinate-wise trimmed mean. Like the median, the exact per-shard
/// partial is the raw value multiset, so the flat statistic is computed
/// directly at every shard count. The surviving values are summed with
/// FedAvg's sample-fraction weights on the exact accumulator, and the
/// trimmed-away weight mass is renormalised back in; with `trim = 0`
/// nothing is trimmed, the renormalisation factor is exactly `1.0`, and
/// the result is bit-identical to FedAvg.
#[derive(Debug, Clone, Copy)]
pub struct TrimmedMeanAggregator {
    /// Fraction trimmed from each end per coordinate, in `[0, 0.5)`.
    pub trim: f64,
}

impl Aggregator for TrimmedMeanAggregator {
    fn name(&self) -> &'static str {
        "TrimmedMean"
    }
    fn accepts_partial_updates(&self) -> bool {
        true
    }
    fn heterogeneity_robustness(&self) -> f64 {
        AggregationAlgorithm::TrimmedMean { trim: self.trim }.heterogeneity_robustness()
    }
    fn poison_robustness(&self) -> f64 {
        AggregationAlgorithm::TrimmedMean { trim: self.trim }.poison_robustness()
    }
    fn exact_sharded(&self) -> bool {
        true
    }

    fn aggregate_sharded(&self, global: &mut [f32], updates: &[ClientUpdate], _shards: usize) {
        if updates.is_empty() {
            return;
        }
        assert_deltas_conform(global, updates);
        let n = updates.len();
        // Validation pins trim < 0.5, so 2k < n and at least one value
        // survives per coordinate.
        let k = (self.trim * n as f64).floor() as usize;
        let weights = sample_fraction_weights(updates);
        let total_w: f64 = weights.iter().copied().map(f64::from).sum();
        let steps: Vec<f64> = (0..global.len())
            .into_par_iter()
            .with_min_len(256)
            .map(|j| {
                let mut column: Vec<(f32, usize)> = updates
                    .iter()
                    .enumerate()
                    .map(|(u, upd)| {
                        let v = upd.delta[j];
                        assert!(v.is_finite(), "trimmed mean requires finite deltas");
                        (v, u)
                    })
                    .collect();
                column.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
                // Sum the kept terms in *update* order (not sorted order):
                // at trim = 0 this is term-for-term the FedAvg inner loop.
                let mut kept: Vec<usize> = column[k..n - k].iter().map(|&(_, u)| u).collect();
                kept.sort_unstable();
                let mut acc = ExactF32Sum::default();
                let mut kept_w = 0.0f64;
                for &u in &kept {
                    acc.add(weights[u] * updates[u].delta[j]);
                    kept_w += f64::from(weights[u]);
                }
                // Renormalise the surviving weight mass. With nothing
                // trimmed `kept_w` is the same f64 sum as `total_w`, the
                // factor is exactly 1.0 and the multiply is a bit-exact
                // no-op — the FedAvg-equality contract.
                acc.to_f64() * (total_w / kept_w)
            })
            .collect();
        for (g, s) in global.iter_mut().zip(steps.iter()) {
            *g = (f64::from(*g) + s) as f32;
        }
    }
}

/// Krum. Scores every update by the summed squared distance to its
/// `n − f − 2` nearest peers (with `f = ⌊(n−1)/3⌋` assumed Byzantine)
/// and applies the lowest-scoring update verbatim — the output is always
/// one of the submitted deltas. Flat-only: the pairwise score matrix has
/// no exact per-shard partial.
#[derive(Debug, Clone, Copy)]
pub struct KrumAggregator;

impl KrumAggregator {
    /// Index of the update Krum selects (ties go to the lowest index).
    ///
    /// # Panics
    ///
    /// Panics on an empty cohort.
    pub fn select(updates: &[ClientUpdate]) -> usize {
        let n = updates.len();
        assert!(n > 0, "Krum selection needs at least one update");
        if n == 1 {
            return 0;
        }
        let f = (n - 1) / 3;
        let neighbours = n.saturating_sub(f + 2).max(1).min(n - 1);
        // Pairwise squared L2 distances, accumulated in coordinate order
        // (f64) — deterministic and symmetric.
        let mut d2 = vec![0.0f64; n * n];
        for i in 0..n {
            for j in i + 1..n {
                let d: f64 = updates[i]
                    .delta
                    .iter()
                    .zip(updates[j].delta.iter())
                    .map(|(a, b)| {
                        let diff = f64::from(*a) - f64::from(*b);
                        diff * diff
                    })
                    .sum();
                d2[i * n + j] = d;
                d2[j * n + i] = d;
            }
        }
        let mut best = 0usize;
        let mut best_score = f64::INFINITY;
        let mut nearest: Vec<f64> = Vec::with_capacity(n - 1);
        for i in 0..n {
            nearest.clear();
            nearest.extend((0..n).filter(|&j| j != i).map(|j| d2[i * n + j]));
            nearest.sort_by(f64::total_cmp);
            let score: f64 = nearest[..neighbours].iter().sum();
            if score < best_score {
                best_score = score;
                best = i;
            }
        }
        best
    }
}

impl Aggregator for KrumAggregator {
    fn name(&self) -> &'static str {
        "Krum"
    }
    fn accepts_partial_updates(&self) -> bool {
        true
    }
    fn heterogeneity_robustness(&self) -> f64 {
        AggregationAlgorithm::Krum.heterogeneity_robustness()
    }
    fn poison_robustness(&self) -> f64 {
        AggregationAlgorithm::Krum.poison_robustness()
    }
    fn exact_sharded(&self) -> bool {
        false
    }

    fn aggregate_sharded(&self, global: &mut [f32], updates: &[ClientUpdate], shards: usize) {
        assert!(
            shards <= 1,
            "Krum is flat-only: no exact per-shard partial exists \
             (configuration validation rejects shards > 1)"
        );
        if updates.is_empty() {
            return;
        }
        assert_deltas_conform(global, updates);
        for u in updates {
            for v in &u.delta {
                assert!(v.is_finite(), "Krum requires finite deltas");
            }
        }
        let chosen = Self::select(updates);
        for (g, d) in global.iter_mut().zip(updates[chosen].delta.iter()) {
            *g = (f64::from(*g) + f64::from(*d)) as f32;
        }
    }
}

/// Number of 64-bit digit windows an [`ExactF32Sum`] spans: the scaled
/// `f32` integer range is 278 bits (24-bit significands shifted by up to
/// 254 exponent steps), so five windows hold every term with headroom for
/// trillions of additions before any digit could saturate.
const ACC_DIGITS: usize = 5;

/// An exact accumulator for sums of finite `f32` values.
///
/// Every `f32` is an integer multiple of `2⁻¹⁴⁹`; the accumulator stores
/// the running sum as that integer, split into 64-bit digit windows held
/// in `i128` lanes (so carries never need propagating during
/// accumulation). Addition of integers is associative and commutative,
/// which is the property hierarchical aggregation needs: *any* grouping
/// of the same terms produces the same accumulated value, bit for bit.
/// [`ExactF32Sum::to_f64`] rounds the exact integer back to the nearest
/// representable `f64` once, at the end.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExactF32Sum {
    digits: [i128; ACC_DIGITS],
}

impl ExactF32Sum {
    /// Adds one term exactly.
    ///
    /// # Panics
    ///
    /// Panics on a non-finite term: infinities and NaNs have no integer
    /// representation, and silently poisoning an exact sum would defeat
    /// its purpose. (Client deltas are gradient-clipped upstream, so a
    /// non-finite term is always a bug.)
    #[inline]
    pub fn add(&mut self, term: f32) {
        assert!(term.is_finite(), "exact summation requires finite terms");
        if term == 0.0 {
            return;
        }
        let bits = term.to_bits();
        let exp = (bits >> 23) & 0xff;
        let frac = bits & 0x7f_ffff;
        // value = m · 2^(shift − 149): normals carry the implicit bit and
        // a biased exponent; subnormals are already plain integers.
        let (m, shift) = if exp == 0 {
            (u128::from(frac), 0u32)
        } else {
            (u128::from(frac | 0x80_0000), exp - 1)
        };
        let digit = (shift / 64) as usize;
        let wide = m << (shift % 64); // ≤ 2^87, fits u128
        let lo = (wide & u128::from(u64::MAX)) as i128;
        let hi = (wide >> 64) as i128;
        if bits >> 31 == 1 {
            self.digits[digit] -= lo;
            self.digits[digit + 1] -= hi;
        } else {
            self.digits[digit] += lo;
            self.digits[digit + 1] += hi;
        }
    }

    /// Merges another accumulator into this one — exact, so the merge
    /// order can never matter.
    #[inline]
    pub fn merge(&mut self, other: &ExactF32Sum) {
        for (a, b) in self.digits.iter_mut().zip(other.digits.iter()) {
            *a += b;
        }
    }

    /// Rounds the exact sum to `f64`.
    ///
    /// The digit lanes are first normalised (carries propagated, a global
    /// sign extracted) so the conversion is a monotone Horner walk over
    /// same-sign digits — no catastrophic cancellation between lanes. The
    /// result is a pure function of the exact integer value.
    pub fn to_f64(&self) -> f64 {
        let mut digits = self.digits;
        carry_propagate(&mut digits);
        let negative = digits[ACC_DIGITS - 1] < 0;
        if negative {
            for d in digits.iter_mut() {
                *d = -*d;
            }
            carry_propagate(&mut digits);
        }
        let mut magnitude = 0.0f64;
        for &d in digits.iter().rev() {
            magnitude = magnitude * 1.844_674_407_370_955_2e19 + d as f64; // · 2^64
        }
        let value = magnitude * 2.0f64.powi(-149);
        if negative {
            -value
        } else {
            value
        }
    }
}

/// Normalises digit lanes so every lane but the last lies in
/// `[0, 2^64)`; the top lane carries the sign.
fn carry_propagate(digits: &mut [i128; ACC_DIGITS]) {
    for i in 0..ACC_DIGITS - 1 {
        let carry = digits[i] >> 64; // arithmetic shift: floor division
        digits[i] -= carry << 64;
        digits[i + 1] += carry;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn update(delta: Vec<f32>, samples: usize, steps: usize) -> ClientUpdate {
        ClientUpdate {
            delta,
            num_samples: samples,
            local_steps: steps,
        }
    }

    #[test]
    fn fedavg_weights_by_samples() {
        let mut global = vec![0.0f32; 2];
        AggregationAlgorithm::FedAvg.aggregate(
            &mut global,
            &[
                update(vec![1.0, 0.0], 30, 10),
                update(vec![0.0, 1.0], 10, 10),
            ],
        );
        assert!((global[0] - 0.75).abs() < 1e-6);
        assert!((global[1] - 0.25).abs() < 1e-6);
    }

    #[test]
    fn fednova_equalises_unequal_steps() {
        // Two clients with equal data but one ran 4x the steps (and thus a
        // ~4x delta). FedNova should not let the long-runner dominate.
        let mut nova = vec![0.0f32; 1];
        AggregationAlgorithm::FedNova.aggregate(
            &mut nova,
            &[update(vec![4.0], 10, 40), update(vec![1.0], 10, 10)],
        );
        let mut avg = vec![0.0f32; 1];
        AggregationAlgorithm::FedAvg.aggregate(
            &mut avg,
            &[update(vec![4.0], 10, 40), update(vec![1.0], 10, 10)],
        );
        // FedAvg sees (4+1)/2 = 2.5; FedNova sees per-step 0.1 each,
        // tau_eff = 25 -> 2.5... with equal per-step progress they agree;
        // the difference appears when per-step progress is unequal.
        assert!((avg[0] - 2.5).abs() < 1e-6);
        assert!((nova[0] - 2.5).abs() < 1e-6);

        // Unequal per-step progress: straggler contributed 10 of 40 steps.
        let mut nova2 = vec![0.0f32; 1];
        AggregationAlgorithm::FedNova.aggregate(
            &mut nova2,
            &[update(vec![1.0], 10, 10), update(vec![4.0], 10, 40)],
        );
        let mut avg2 = vec![0.0f32; 1];
        AggregationAlgorithm::FedAvg.aggregate(
            &mut avg2,
            &[update(vec![1.0], 10, 10), update(vec![4.0], 10, 40)],
        );
        assert_eq!(nova2, nova);
        assert_eq!(avg2, avg);
    }

    #[test]
    fn fednova_normalised_direction_is_step_fair() {
        // One client took 1 step of size 1, another 100 steps totalling 1.
        // FedNova weights their *per-step* progress equally.
        let mut nova = vec![0.0f32; 1];
        AggregationAlgorithm::FedNova.aggregate(
            &mut nova,
            &[update(vec![1.0], 10, 1), update(vec![1.0], 10, 100)],
        );
        // per-step: 1.0 and 0.01; tau_eff = 50.5; delta = 50.5*(0.5*1 + 0.5*0.01) = 25.5
        assert!((nova[0] - 25.502_5).abs() < 1e-3, "got {}", nova[0]);
    }

    #[test]
    fn partial_update_policy_matches_paper() {
        assert!(!AggregationAlgorithm::FedAvg.accepts_partial_updates());
        assert!(AggregationAlgorithm::FedNova.accepts_partial_updates());
        assert!(AggregationAlgorithm::FedProx { mu: 0.01 }.accepts_partial_updates());
        assert!(AggregationAlgorithm::Fedl { eta: 0.1 }.accepts_partial_updates());
        assert!(AggregationAlgorithm::Median.accepts_partial_updates());
        assert!(AggregationAlgorithm::Krum.accepts_partial_updates());
    }

    #[test]
    fn empty_round_is_a_no_op() {
        for algorithm in [
            AggregationAlgorithm::FedAvg,
            AggregationAlgorithm::Median,
            AggregationAlgorithm::TrimmedMean { trim: 0.2 },
            AggregationAlgorithm::Krum,
        ] {
            let mut global = vec![1.0f32, 2.0];
            algorithm.aggregate(&mut global, &[]);
            assert_eq!(global, vec![1.0, 2.0], "{}", algorithm.name());
        }
    }

    #[test]
    fn exact_sum_is_order_and_grouping_invariant() {
        // Terms engineered so floating-point addition order matters:
        // a plain f32/f64 left fold gives different results for the two
        // orders; the exact accumulator must not.
        let terms = [
            1.0e30f32,
            -1.0e30,
            1.5e-40, // subnormal
            3.25,
            -7.125e10,
            1.0e-20,
            f32::MAX / 4.0,
            -f32::MAX / 4.0,
        ];
        let mut fwd = ExactF32Sum::default();
        for t in terms {
            fwd.add(t);
        }
        let mut rev = ExactF32Sum::default();
        for t in terms.iter().rev() {
            rev.add(*t);
        }
        assert_eq!(fwd, rev);
        // Grouped: two partials merged.
        let mut a = ExactF32Sum::default();
        let mut b = ExactF32Sum::default();
        for (i, t) in terms.iter().enumerate() {
            if i % 2 == 0 {
                a.add(*t);
            } else {
                b.add(*t);
            }
        }
        a.merge(&b);
        assert_eq!(a, fwd);
        assert_eq!(a.to_f64().to_bits(), fwd.to_f64().to_bits());
    }

    #[test]
    fn exact_sum_survives_catastrophic_cancellation() {
        // f32::MAX/2 − f32::MAX/2 + tiny: a float accumulator visiting
        // the large terms first loses `tiny` entirely only if it rounds;
        // the exact path recovers it regardless of order.
        let tiny = 1.0e-42f32; // subnormal
        let mut acc = ExactF32Sum::default();
        acc.add(f32::MAX / 2.0);
        acc.add(tiny);
        acc.add(-f32::MAX / 2.0);
        assert_eq!(acc.to_f64(), f64::from(tiny));
        // Exact negative values round-trip through the sign handling.
        let mut neg = ExactF32Sum::default();
        neg.add(-3.5);
        neg.add(1.25);
        assert_eq!(neg.to_f64(), -2.25);
        assert_eq!(ExactF32Sum::default().to_f64(), 0.0);
    }

    #[test]
    #[should_panic(expected = "finite terms")]
    fn exact_sum_rejects_non_finite_terms() {
        ExactF32Sum::default().add(f32::NAN);
    }

    #[test]
    fn sharded_aggregation_matches_flat_for_every_shard_count() {
        let updates: Vec<ClientUpdate> = (0..13)
            .map(|i| {
                update(
                    (0..9)
                        .map(|j| ((i * 31 + j * 17) % 23) as f32 * 0.37 - 4.0)
                        .collect(),
                    10 + i * 3,
                    1 + (i % 5),
                )
            })
            .collect();
        for algorithm in [
            AggregationAlgorithm::FedAvg,
            AggregationAlgorithm::FedNova,
            AggregationAlgorithm::FedProx { mu: 0.01 },
            AggregationAlgorithm::Median,
            AggregationAlgorithm::TrimmedMean { trim: 0.0 },
            AggregationAlgorithm::TrimmedMean { trim: 0.3 },
        ] {
            let mut flat = vec![0.5f32; 9];
            algorithm.aggregate(&mut flat, &updates);
            for shards in [2, 3, 5, 13, 40] {
                let mut sharded = vec![0.5f32; 9];
                algorithm.aggregate_sharded(&mut sharded, &updates, shards);
                let flat_bits: Vec<u32> = flat.iter().map(|v| v.to_bits()).collect();
                let sharded_bits: Vec<u32> = sharded.iter().map(|v| v.to_bits()).collect();
                assert_eq!(flat_bits, sharded_bits, "{} at {shards}", algorithm.name());
            }
        }
    }

    #[test]
    fn median_resists_a_poisoned_minority() {
        // Three honest clients push +1, two attackers push -100: the
        // mean is dragged far negative, the median stays at +1.
        let updates: Vec<ClientUpdate> = [1.0f32, 1.0, 1.0, -100.0, -100.0]
            .iter()
            .map(|&v| update(vec![v], 10, 5))
            .collect();
        let mut median = vec![0.0f32; 1];
        AggregationAlgorithm::Median.aggregate(&mut median, &updates);
        assert_eq!(median[0], 1.0);
        let mut mean = vec![0.0f32; 1];
        AggregationAlgorithm::FedAvg.aggregate(&mut mean, &updates);
        assert!(mean[0] < -30.0, "FedAvg should be dragged, got {}", mean[0]);
    }

    #[test]
    fn median_of_even_cohort_is_the_midpoint() {
        let updates: Vec<ClientUpdate> = [2.0f32, 4.0, -10.0, 100.0]
            .iter()
            .map(|&v| update(vec![v], 10, 5))
            .collect();
        let mut g = vec![0.0f32; 1];
        AggregationAlgorithm::Median.aggregate(&mut g, &updates);
        assert_eq!(g[0], 3.0);
    }

    #[test]
    fn trimmed_mean_discards_the_tails() {
        // trim = 0.25 over 4 updates cuts one value from each end.
        let updates: Vec<ClientUpdate> = [1.0f32, 2.0, 3.0, 1000.0]
            .iter()
            .map(|&v| update(vec![v], 10, 5))
            .collect();
        let mut g = vec![0.0f32; 1];
        AggregationAlgorithm::TrimmedMean { trim: 0.25 }.aggregate(&mut g, &updates);
        // Kept: 2.0 and 3.0 with equal weights -> 2.5.
        assert!((g[0] - 2.5).abs() < 1e-6, "got {}", g[0]);
    }

    #[test]
    fn trimmed_mean_at_zero_is_fedavg_bit_for_bit() {
        let updates: Vec<ClientUpdate> = (0..7)
            .map(|i| {
                update(
                    (0..5)
                        .map(|j| ((i * 13 + j * 7) % 11) as f32 * 0.21 - 1.0)
                        .collect(),
                    5 + i * 2,
                    3,
                )
            })
            .collect();
        let mut avg = vec![0.25f32; 5];
        AggregationAlgorithm::FedAvg.aggregate(&mut avg, &updates);
        let mut trimmed = vec![0.25f32; 5];
        AggregationAlgorithm::TrimmedMean { trim: 0.0 }.aggregate(&mut trimmed, &updates);
        let a: Vec<u32> = avg.iter().map(|v| v.to_bits()).collect();
        let b: Vec<u32> = trimmed.iter().map(|v| v.to_bits()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn krum_applies_one_submitted_update_verbatim() {
        // A tight honest cluster and one far-away attacker: Krum must
        // pick a cluster member and apply its delta exactly.
        let updates = vec![
            update(vec![1.0, 1.1], 10, 5),
            update(vec![1.1, 0.9], 10, 5),
            update(vec![0.9, 1.0], 10, 5),
            update(vec![50.0, -50.0], 10, 5),
        ];
        let chosen = KrumAggregator::select(&updates);
        assert!(chosen < 3, "Krum picked the attacker ({chosen})");
        let mut g = vec![0.0f32; 2];
        AggregationAlgorithm::Krum.aggregate(&mut g, &updates);
        for (a, b) in g.iter().zip(updates[chosen].delta.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "flat-only")]
    fn krum_rejects_sharded_aggregation() {
        let updates = vec![update(vec![1.0], 10, 5)];
        let mut g = vec![0.0f32; 1];
        AggregationAlgorithm::Krum.aggregate_sharded(&mut g, &updates, 2);
    }

    #[test]
    fn spec_and_lowered_aggregator_metadata_agree() {
        for algorithm in [
            AggregationAlgorithm::FedAvg,
            AggregationAlgorithm::FedProx { mu: 0.01 },
            AggregationAlgorithm::FedNova,
            AggregationAlgorithm::Fedl { eta: 0.1 },
            AggregationAlgorithm::Median,
            AggregationAlgorithm::TrimmedMean { trim: 0.2 },
            AggregationAlgorithm::Krum,
        ] {
            let lowered = algorithm.build_aggregator();
            assert_eq!(algorithm.name(), lowered.name());
            assert_eq!(
                algorithm.accepts_partial_updates(),
                lowered.accepts_partial_updates()
            );
            assert_eq!(
                algorithm.heterogeneity_robustness().to_bits(),
                lowered.heterogeneity_robustness().to_bits()
            );
            assert_eq!(
                algorithm.poison_robustness().to_bits(),
                lowered.poison_robustness().to_bits()
            );
            assert_eq!(algorithm.exact_sharded(), lowered.exact_sharded());
        }
    }
}

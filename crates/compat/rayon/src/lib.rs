//! Minimal, dependency-free, *deterministic* stand-in for the `rayon`
//! crate (API subset).
//!
//! The build environment for this workspace has no access to crates.io,
//! so the simulation links against this in-tree implementation instead.
//! Only the surface the AutoFL crates actually use is provided:
//!
//! * [`join`] — scoped two-way fork/join,
//! * [`iter::IntoParallelIterator`] / [`iter::IntoParallelRefIterator`] —
//!   `into_par_iter()` over `0..n` and `par_iter()` over slices, with
//!   `map`, `with_min_len` and ordered `collect`,
//! * [`iter::IntoParallelRefMutIterator`] — `par_iter_mut().for_each(..)`
//!   over mutable elements (the "one task owns one shard" shape),
//! * [`iter::ParallelSliceMut`] — `par_chunks_mut(..)` over disjoint
//!   output blocks, with `with_min_len`, plain `for_each` and
//!   `enumerate().for_each(..)`,
//! * [`current_num_threads`] — the effective thread count.
//!
//! # Determinism contract
//!
//! Real rayon trades ordering for throughput (work stealing, first-come
//! reductions). This shim does not: the index space is split into
//! contiguous chunks, every chunk's results land in a pre-assigned slot,
//! and `collect` concatenates the slots in index order. Combined with the
//! rule that callers reduce collected results in index order (never
//! first-come) this makes every parallel operation produce *bit-identical*
//! output at any thread count — `AUTOFL_THREADS=1` and `=64` walk exactly
//! the same floating-point additions in exactly the same order. The
//! workspace-level test `tests/determinism.rs` pins that contract
//! end-to-end.
//!
//! # Thread count
//!
//! The pool serves `AUTOFL_THREADS` threads (default: the machine's
//! available parallelism; `1` bypasses the pool entirely and runs the
//! exact sequential code path). The variable is read once and cached —
//! reading the environment allocates, and the fleet-dynamics round loop
//! is pinned allocation-free in steady state — so tests and benches that
//! flip it at runtime call [`refresh_thread_count`] afterwards. Parallel
//! calls issued from inside a worker run inline — nesting never
//! oversubscribes or deadlocks, and the outermost fan-out (policy sweeps,
//! per-client training) keeps all the threads busy.

#![warn(missing_docs)]

pub mod iter;
mod pool;

pub use pool::{current_num_threads, join, refresh_thread_count, MAX_WORKERS};

/// One-stop imports mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::iter::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, ParallelSliceMut,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// Serialises the tests that assert on a specific `AUTOFL_THREADS`
    /// value: the test harness runs tests concurrently and the variable
    /// is process-global. (Results are thread-count invariant, so only
    /// assertions *about the count itself* need this.)
    static ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
        let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let prev = std::env::var("AUTOFL_THREADS").ok();
        std::env::set_var("AUTOFL_THREADS", n.to_string());
        crate::refresh_thread_count();
        let r = f();
        match prev {
            Some(v) => std::env::set_var("AUTOFL_THREADS", v),
            None => std::env::remove_var("AUTOFL_THREADS"),
        }
        crate::refresh_thread_count();
        r
    }

    #[test]
    fn map_collect_is_ordered_at_any_thread_count() {
        let expect: Vec<u64> = (0..10_000u64).map(|i| i * i).collect();
        for threads in [1, 2, 3, 8] {
            let got: Vec<u64> = with_threads(threads, || {
                (0..10_000usize)
                    .into_par_iter()
                    .map(|i| (i as u64) * (i as u64))
                    .collect()
            });
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn slice_par_iter_maps_by_reference() {
        let v: Vec<i64> = (0..997).collect();
        let doubled: Vec<i64> = with_threads(4, || v.par_iter().map(|x| x * 2).collect());
        assert_eq!(doubled.len(), 997);
        assert!(doubled.iter().enumerate().all(|(i, &x)| x == 2 * i as i64));
    }

    #[test]
    fn chunks_mut_visits_every_chunk_once() {
        let mut data = vec![0usize; 1000];
        let visits = AtomicUsize::new(0);
        with_threads(4, || {
            data.par_chunks_mut(64).enumerate().for_each(|(ci, chunk)| {
                visits.fetch_add(1, Ordering::Relaxed);
                for (j, x) in chunk.iter_mut().enumerate() {
                    *x = ci * 64 + j;
                }
            });
        });
        assert_eq!(visits.load(Ordering::Relaxed), 1000usize.div_ceil(64));
        assert!(data.iter().enumerate().all(|(i, &x)| x == i));
    }

    #[test]
    fn chunks_mut_plain_for_each_and_min_len() {
        let mut data = vec![0usize; 500];
        with_threads(4, || {
            data.par_chunks_mut(10)
                .with_min_len(4)
                .for_each(|chunk| chunk.fill(7));
        });
        assert!(data.iter().all(|&x| x == 7));
        // Below the min_len threshold the loop runs inline; results are
        // identical either way.
        let mut small = vec![0usize; 30];
        with_threads(4, || {
            small
                .par_chunks_mut(10)
                .with_min_len(4)
                .for_each(|chunk| chunk.fill(9));
        });
        assert!(small.iter().all(|&x| x == 9));
    }

    #[test]
    fn par_iter_mut_visits_every_element_once() {
        let mut data: Vec<usize> = (0..1000).collect();
        let visits = AtomicUsize::new(0);
        for threads in [1, 4] {
            with_threads(threads, || {
                data.par_iter_mut().for_each(|x| {
                    visits.fetch_add(1, Ordering::Relaxed);
                    *x += 1;
                });
            });
        }
        assert_eq!(visits.load(Ordering::Relaxed), 2000);
        assert!(data.iter().enumerate().all(|(i, &x)| x == i + 2));
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = with_threads(2, || super::join(|| 1 + 1, || "two"));
        assert_eq!((a, b), (2, "two"));
    }

    #[test]
    fn nested_parallelism_stays_correct() {
        let out: Vec<Vec<usize>> = with_threads(4, || {
            (0..16usize)
                .into_par_iter()
                .map(|i| {
                    (0..8usize)
                        .into_par_iter()
                        .map(move |j| i * 8 + j)
                        .collect()
                })
                .collect()
        });
        for (i, inner) in out.iter().enumerate() {
            assert!(inner.iter().enumerate().all(|(j, &x)| x == i * 8 + j));
        }
    }

    #[test]
    fn panics_propagate_to_the_caller() {
        let result = std::panic::catch_unwind(|| {
            with_threads(4, || {
                let _: Vec<usize> = (0..64usize)
                    .into_par_iter()
                    .map(|i| {
                        if i == 33 {
                            panic!("boom");
                        }
                        i
                    })
                    .collect();
            })
        });
        assert!(result.is_err());
        // The pool must remain usable after a panicking batch.
        let v: Vec<usize> = with_threads(4, || (0..64usize).into_par_iter().map(|i| i).collect());
        assert_eq!(v.len(), 64);
    }

    #[test]
    fn thread_count_env_parsing() {
        assert!(with_threads(3, super::current_num_threads) == 3);
        let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let prev = std::env::var("AUTOFL_THREADS").ok();
        std::env::set_var("AUTOFL_THREADS", "not-a-number");
        assert!(super::refresh_thread_count() >= 1);
        assert!(super::current_num_threads() >= 1);
        match prev {
            Some(v) => std::env::set_var("AUTOFL_THREADS", v),
            None => std::env::remove_var("AUTOFL_THREADS"),
        }
        super::refresh_thread_count();
    }
}

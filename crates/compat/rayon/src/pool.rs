//! The fixed worker pool and the scoped batch executor built on it.
//!
//! Workers are plain OS threads parked on a condvar; they are spawned
//! lazily (up to [`MAX_WORKERS`]) the first time a parallel operation asks
//! for them and then live for the remainder of the process. A parallel
//! operation never *requires* the workers to make progress: the submitting
//! thread always drains its own batch, so a fully-busy (or one-thread)
//! pool degrades to sequential execution instead of deadlocking, and a
//! parallel call issued from *inside* a worker runs inline.

use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Upper bound on pool workers, regardless of `AUTOFL_THREADS`.
pub const MAX_WORKERS: usize = 64;

type PoolJob = Box<dyn FnOnce() + Send + 'static>;

struct Pool {
    queue: Mutex<VecDeque<PoolJob>>,
    available: Condvar,
    spawned: Mutex<usize>,
}

static POOL: OnceLock<Pool> = OnceLock::new();

thread_local! {
    static IN_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

fn pool() -> &'static Pool {
    POOL.get_or_init(|| Pool {
        queue: Mutex::new(VecDeque::new()),
        available: Condvar::new(),
        spawned: Mutex::new(0),
    })
}

/// Whether the current thread is a pool worker. Parallel operations called
/// from a worker run sequentially, which both avoids pool starvation and
/// keeps nested parallelism deterministic.
pub(crate) fn in_worker() -> bool {
    IN_WORKER.with(|f| f.get())
}

fn worker_loop() {
    IN_WORKER.with(|f| f.set(true));
    let p = pool();
    loop {
        let job = {
            let mut q = p.queue.lock().expect("pool queue");
            loop {
                if let Some(j) = q.pop_front() {
                    break j;
                }
                q = p.available.wait(q).expect("pool queue");
            }
        };
        job();
    }
}

/// Spawns workers until at least `n` exist (capped at [`MAX_WORKERS`]).
fn ensure_workers(n: usize) {
    let p = pool();
    let mut spawned = p.spawned.lock().expect("pool size");
    let target = n.min(MAX_WORKERS);
    while *spawned < target {
        *spawned += 1;
        std::thread::Builder::new()
            .name(format!("autofl-par-{}", *spawned))
            .spawn(worker_loop)
            .expect("spawn pool worker");
    }
}

/// Cached thread count; `0` means "not read yet". Reading `AUTOFL_THREADS`
/// through `std::env::var` allocates a `String`, and parallel operations
/// consult the count on every call — caching keeps the steady-state round
/// loop allocation-free (pinned by `tests/alloc_steady_state.rs`).
static CACHED_THREADS: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);

/// The number of threads a parallel operation submitted *now* may use,
/// including the submitting thread itself.
///
/// `AUTOFL_THREADS` is read once and cached (like real rayon, whose pool
/// size is fixed when the pool is built); unset, empty, unparseable or
/// `0` values fall back to the machine's available parallelism. Tests and
/// benches that change the variable at runtime call
/// [`refresh_thread_count`] afterwards. Thread count never affects
/// results — only wall-clock time — so this is a pure tuning knob.
pub fn current_num_threads() -> usize {
    match CACHED_THREADS.load(std::sync::atomic::Ordering::Relaxed) {
        0 => refresh_thread_count(),
        n => n,
    }
}

/// Re-reads `AUTOFL_THREADS` and returns the new effective thread count.
///
/// Call this after changing the variable mid-process; the environment is
/// otherwise consulted only on the first parallel operation.
pub fn refresh_thread_count() -> usize {
    let configured = std::env::var("AUTOFL_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1);
    let n = configured
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
        .min(MAX_WORKERS);
    CACHED_THREADS.store(n, std::sync::atomic::Ordering::Relaxed);
    n
}

/// One unit of work inside a batch; may borrow the caller's stack.
pub(crate) type ScopedJob<'scope> = Box<dyn FnOnce() + Send + 'scope>;

/// Aborts the process if dropped during unwinding; armed while
/// lifetime-erased jobs may still be queued (see `run_batch`).
struct AbortOnUnwind;

impl Drop for AbortOnUnwind {
    fn drop(&mut self) {
        if std::thread::panicking() {
            std::process::abort();
        }
    }
}

struct Batch<'scope> {
    pending: Mutex<Vec<ScopedJob<'scope>>>,
    remaining: Mutex<usize>,
    finished: Condvar,
    panic: Mutex<Option<Box<dyn Any + Send + 'static>>>,
}

fn drain(batch: &Batch<'_>) {
    loop {
        let job = {
            let mut p = batch.pending.lock().expect("batch pending");
            p.pop()
        };
        let Some(job) = job else { break };
        if let Err(payload) = catch_unwind(AssertUnwindSafe(job)) {
            let mut slot = batch.panic.lock().expect("batch panic slot");
            if slot.is_none() {
                *slot = Some(payload);
            }
        }
        let mut rem = batch.remaining.lock().expect("batch remaining");
        *rem -= 1;
        if *rem == 0 {
            batch.finished.notify_all();
        }
    }
}

/// Runs every job in `jobs` to completion on up to `threads` OS threads
/// (the calling thread included) and returns once all have finished.
///
/// Jobs may borrow from the caller's stack: the function blocks until the
/// whole batch is done, so no borrow escapes. Execution *order* is
/// unspecified — callers must make each job independent (e.g. write to a
/// disjoint, pre-assigned output slot) and perform any reduction over the
/// collected results in index order themselves; that is what keeps every
/// parallel operation bit-identical at any thread count. A panicking job
/// does not poison the pool: the first panic payload is re-raised on the
/// calling thread after the batch completes.
pub(crate) fn run_batch<'scope>(threads: usize, jobs: Vec<ScopedJob<'scope>>) {
    let total = jobs.len();
    if total == 0 {
        return;
    }
    if threads <= 1 || total == 1 || in_worker() {
        for job in jobs {
            job();
        }
        return;
    }

    let batch = Arc::new(Batch {
        pending: Mutex::new(jobs),
        remaining: Mutex::new(total),
        finished: Condvar::new(),
        panic: Mutex::new(None),
    });
    // Helpers are ordinary pool jobs and therefore need `'static`. The
    // lifetime is erased, which is sound because (a) this function blocks
    // until `remaining == 0`, after which `pending` is empty, and (b) a
    // late-running helper then finds no job and exits without touching
    // any `'scope` data.
    let eternal: Arc<Batch<'static>> = unsafe {
        std::mem::transmute::<Arc<Batch<'scope>>, Arc<Batch<'static>>>(Arc::clone(&batch))
    };
    let helpers = (threads - 1).min(total - 1);
    ensure_workers(helpers);
    // From the moment helper jobs are queued until the batch fully
    // completes, this frame MUST NOT unwind: queued helpers hold the
    // lifetime-erased batch, and unwinding would free the stack the
    // pending jobs borrow. Job panics are caught inside `drain`; this
    // guard turns any *other* escape path into an abort instead of a
    // use-after-free.
    let guard = AbortOnUnwind;
    {
        let p = pool();
        let mut q = p.queue.lock().expect("pool queue");
        for _ in 0..helpers {
            let b = Arc::clone(&eternal);
            q.push_back(Box::new(move || drain(&b)));
        }
        drop(q);
        p.available.notify_all();
    }
    drop(eternal);

    drain(&batch);
    let mut rem = batch.remaining.lock().expect("batch remaining");
    while *rem > 0 {
        rem = batch.finished.wait(rem).expect("batch remaining");
    }
    drop(rem);
    std::mem::forget(guard);
    let payload = batch.panic.lock().expect("batch panic slot").take();
    if let Some(payload) = payload {
        resume_unwind(payload);
    }
}

/// Runs the two closures, potentially in parallel, and returns both
/// results. The deterministic analogue of `rayon::join`.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 || in_worker() {
        return (oper_a(), oper_b());
    }
    let mut ra = None;
    let mut rb = None;
    {
        let slot_a = &mut ra;
        let slot_b = &mut rb;
        run_batch(
            2,
            vec![
                Box::new(move || *slot_a = Some(oper_a())),
                Box::new(move || *slot_b = Some(oper_b())),
            ],
        );
    }
    (ra.expect("join lhs ran"), rb.expect("join rhs ran"))
}

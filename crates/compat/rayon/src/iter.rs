//! The parallel-iterator subset: `par_iter().map(..).collect()`,
//! `into_par_iter()` over index ranges, and `par_chunks_mut`.
//!
//! Unlike real rayon, every combinator here is *eager and ordered*: `map`
//! fans the index space out in contiguous chunks and `collect` stitches
//! the chunk results back together in index order, so the collected `Vec`
//! is byte-for-byte the one the sequential path produces. There are
//! deliberately no unordered reductions (`sum`, first-come `reduce`):
//! callers collect and fold in index order, which is the workspace's
//! determinism contract.

use crate::pool::{current_num_threads, in_worker, run_batch, ScopedJob};
use std::ops::Range;
use std::sync::Mutex;

/// How many threads an operation over `len` items with the given minimum
/// chunk length may use (1 means: run inline).
fn effective_parallelism(len: usize, min_len: usize) -> usize {
    if in_worker() || len <= min_len.max(1) {
        return 1;
    }
    current_num_threads().min(len.div_ceil(min_len.max(1)))
}

/// Executes `f` for every index in `0..len` and returns the results in
/// index order. The chunked fan-out never reorders or regroups results,
/// so the output is identical at any thread count.
fn par_map_collect<U, F>(len: usize, min_len: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    let threads = effective_parallelism(len, min_len);
    if threads <= 1 {
        return (0..len).map(f).collect();
    }
    // 2 chunks per thread keeps stragglers short without letting the
    // per-chunk bookkeeping dominate.
    let chunk_len = len.div_ceil(threads * 2).max(min_len.max(1));
    let num_chunks = len.div_ceil(chunk_len);
    let slots: Mutex<Vec<Option<Vec<U>>>> = Mutex::new((0..num_chunks).map(|_| None).collect());
    {
        let f = &f;
        let slots = &slots;
        let jobs: Vec<ScopedJob<'_>> = (0..num_chunks)
            .map(|ci| {
                Box::new(move || {
                    let start = ci * chunk_len;
                    let end = ((ci + 1) * chunk_len).min(len);
                    let v: Vec<U> = (start..end).map(f).collect();
                    slots.lock().expect("collect slots")[ci] = Some(v);
                }) as ScopedJob<'_>
            })
            .collect();
        run_batch(threads, jobs);
    }
    let mut out = Vec::with_capacity(len);
    for slot in slots.into_inner().expect("collect slots") {
        out.extend(slot.expect("every chunk completes"));
    }
    out
}

/// Types convertible into a parallel iterator (consuming `self`).
pub trait IntoParallelIterator {
    /// The parallel iterator type.
    type Iter;
    /// Converts `self`.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for Range<usize> {
    type Iter = ParRange;
    fn into_par_iter(self) -> ParRange {
        ParRange {
            range: self,
            min_len: 1,
        }
    }
}

/// Types whose references yield a parallel iterator.
pub trait IntoParallelRefIterator<'data> {
    /// The item reference type.
    type Item: 'data;
    /// The parallel iterator type.
    type Iter;
    /// Borrows `self` as a parallel iterator.
    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = &'data T;
    type Iter = ParSlice<'data, T>;
    fn par_iter(&'data self) -> ParSlice<'data, T> {
        ParSlice {
            slice: self,
            min_len: 1,
        }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = &'data T;
    type Iter = ParSlice<'data, T>;
    fn par_iter(&'data self) -> ParSlice<'data, T> {
        self.as_slice().par_iter()
    }
}

/// Parallel iterator over an index range.
pub struct ParRange {
    range: Range<usize>,
    min_len: usize,
}

impl ParRange {
    /// Sets the minimum number of items a chunk may hold; operations over
    /// fewer total items than this run inline on the calling thread.
    pub fn with_min_len(mut self, min_len: usize) -> Self {
        self.min_len = min_len.max(1);
        self
    }

    /// Maps every index through `f`.
    pub fn map<U, F>(self, f: F) -> ParMap<F>
    where
        U: Send,
        F: Fn(usize) -> U + Sync,
    {
        assert_eq!(self.range.start, 0, "shim supports 0-based ranges only");
        ParMap {
            len: self.range.end,
            min_len: self.min_len,
            f,
        }
    }
}

/// Parallel iterator over a shared slice.
pub struct ParSlice<'data, T> {
    slice: &'data [T],
    min_len: usize,
}

impl<'data, T: Sync> ParSlice<'data, T> {
    /// See [`ParRange::with_min_len`].
    pub fn with_min_len(mut self, min_len: usize) -> Self {
        self.min_len = min_len.max(1);
        self
    }

    /// Maps every element reference through `f`.
    pub fn map<U, G>(self, g: G) -> ParMap<impl Fn(usize) -> U + Sync + 'data>
    where
        U: Send,
        G: Fn(&'data T) -> U + Sync + 'data,
    {
        let slice = self.slice;
        ParMap {
            len: slice.len(),
            min_len: self.min_len,
            f: move |i: usize| g(&slice[i]),
        }
    }
}

/// A mapped parallel iterator, ready to collect.
pub struct ParMap<F> {
    len: usize,
    min_len: usize,
    f: F,
}

impl<U, F> ParMap<F>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    /// See [`ParRange::with_min_len`].
    pub fn with_min_len(mut self, min_len: usize) -> Self {
        self.min_len = min_len.max(1);
        self
    }

    /// Collects the mapped values in index order (bit-identical at any
    /// thread count).
    pub fn collect<C: From<Vec<U>>>(self) -> C {
        C::from(par_map_collect(self.len, self.min_len, self.f))
    }
}

/// Mutable-slice extension: parallel iteration over disjoint chunks.
pub trait ParallelSliceMut<T: Send> {
    /// Splits the slice into chunks of `chunk_size` (the last may be
    /// shorter) for parallel mutation.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParChunksMut {
            slice: self,
            chunk_size,
            min_len: 1,
        }
    }
}

/// Shared fan-out driver for the mutable iterators: visits every
/// `(index, item)` pair exactly once, grouping `min_len.max(⌈n / 2·threads⌉)`
/// consecutive items per job so tiny items don't drown in per-job
/// bookkeeping. Work assignment depends only on `n`, `min_len` and the
/// thread count — never on scheduling — so any writes a caller derives
/// from the item index alone are deterministic.
fn run_items<I, F>(items: Vec<I>, min_len: usize, f: F)
where
    I: Send,
    F: Fn((usize, I)) + Sync,
{
    let n = items.len();
    let threads = effective_parallelism(n, min_len);
    if threads <= 1 {
        for pair in items.into_iter().enumerate() {
            f(pair);
        }
        return;
    }
    let group = n.div_ceil(threads * 2).max(min_len.max(1));
    let f = &f;
    let mut jobs: Vec<ScopedJob<'_>> = Vec::with_capacity(n.div_ceil(group));
    let mut items = items.into_iter().enumerate();
    loop {
        let batch: Vec<(usize, I)> = items.by_ref().take(group).collect();
        if batch.is_empty() {
            break;
        }
        jobs.push(Box::new(move || {
            for pair in batch {
                f(pair);
            }
        }));
    }
    run_batch(threads, jobs);
}

/// Parallel iterator over disjoint mutable chunks of a slice.
///
/// The chunk list is materialised only when work actually fans out to the
/// pool: on the inline path (one effective thread) `for_each` walks
/// `chunks_mut` directly and performs **zero heap allocations** — the
/// property the workspace's steady-state allocation tests pin for the
/// fleet-dynamics round loop.
pub struct ParChunksMut<'data, T> {
    slice: &'data mut [T],
    chunk_size: usize,
    min_len: usize,
}

impl<'data, T: Send> ParChunksMut<'data, T> {
    /// Sets the minimum number of *chunks* a single job may process;
    /// operations over fewer total chunks than this run inline. Mirrors
    /// [`ParRange::with_min_len`] for the chunked iterator, letting hot
    /// loops over many small chunks (e.g. fleet shards) pick a real work
    /// granularity instead of one job per chunk.
    pub fn with_min_len(mut self, min_len: usize) -> Self {
        self.min_len = min_len.max(1);
        self
    }

    /// Pairs every chunk with its index.
    pub fn enumerate(self) -> ParEnumChunksMut<'data, T> {
        ParEnumChunksMut {
            slice: self.slice,
            chunk_size: self.chunk_size,
            min_len: self.min_len,
        }
    }

    /// Runs `f` on every chunk. Each chunk is visited by exactly one
    /// thread; use [`ParChunksMut::enumerate`] when the closure needs the
    /// chunk's position.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'data mut [T]) + Sync,
    {
        let n = self.slice.len().div_ceil(self.chunk_size);
        if effective_parallelism(n, self.min_len) <= 1 {
            for chunk in self.slice.chunks_mut(self.chunk_size) {
                f(chunk);
            }
            return;
        }
        let chunks: Vec<&mut [T]> = self.slice.chunks_mut(self.chunk_size).collect();
        run_items(chunks, self.min_len, |(_, chunk)| f(chunk));
    }
}

/// Types whose mutable references yield a parallel iterator.
pub trait IntoParallelRefMutIterator<'data> {
    /// The mutable item reference type.
    type Item: 'data;
    /// The parallel iterator type.
    type Iter;
    /// Mutably borrows `self` as a parallel iterator.
    fn par_iter_mut(&'data mut self) -> Self::Iter;
}

impl<'data, T: Send + 'data> IntoParallelRefMutIterator<'data> for [T] {
    type Item = &'data mut T;
    type Iter = ParSliceMut<'data, T>;
    fn par_iter_mut(&'data mut self) -> ParSliceMut<'data, T> {
        ParSliceMut {
            slice: self,
            min_len: 1,
        }
    }
}

impl<'data, T: Send + 'data> IntoParallelRefMutIterator<'data> for Vec<T> {
    type Item = &'data mut T;
    type Iter = ParSliceMut<'data, T>;
    fn par_iter_mut(&'data mut self) -> ParSliceMut<'data, T> {
        self.as_mut_slice().par_iter_mut()
    }
}

/// Parallel iterator over mutable element references — the idiomatic
/// shape for "one task owns one shard" loops (`shards.par_iter_mut()
/// .for_each(..)`). Allocation-free on the inline path, like
/// [`ParChunksMut`].
pub struct ParSliceMut<'data, T> {
    slice: &'data mut [T],
    min_len: usize,
}

impl<'data, T: Send> ParSliceMut<'data, T> {
    /// Sets the minimum number of elements a single job may process;
    /// operations over fewer total elements than this run inline.
    pub fn with_min_len(mut self, min_len: usize) -> Self {
        self.min_len = min_len.max(1);
        self
    }

    /// Runs `f` on every element. Each element is visited by exactly one
    /// thread, so writes depend only on the element — never on
    /// scheduling.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'data mut T) + Sync,
    {
        if effective_parallelism(self.slice.len(), self.min_len) <= 1 {
            for item in self.slice.iter_mut() {
                f(item);
            }
            return;
        }
        let items: Vec<&mut T> = self.slice.iter_mut().collect();
        run_items(items, self.min_len, |(_, item)| f(item));
    }
}

/// Enumerated disjoint mutable chunks. Allocation-free on the inline
/// path, like [`ParChunksMut`].
pub struct ParEnumChunksMut<'data, T> {
    slice: &'data mut [T],
    chunk_size: usize,
    min_len: usize,
}

impl<'data, T: Send> ParEnumChunksMut<'data, T> {
    /// See [`ParChunksMut::with_min_len`].
    pub fn with_min_len(mut self, min_len: usize) -> Self {
        self.min_len = min_len.max(1);
        self
    }

    /// Runs `f` on every `(index, chunk)` pair. Each chunk is visited by
    /// exactly one thread, so writes into a chunk depend only on its
    /// index — never on scheduling.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &'data mut [T])) + Sync,
    {
        let n = self.slice.len().div_ceil(self.chunk_size);
        if effective_parallelism(n, self.min_len) <= 1 {
            for pair in self.slice.chunks_mut(self.chunk_size).enumerate() {
                f(pair);
            }
            return;
        }
        let chunks: Vec<&mut [T]> = self.slice.chunks_mut(self.chunk_size).collect();
        run_items(chunks, self.min_len, f);
    }
}

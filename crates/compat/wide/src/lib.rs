//! Minimal, dependency-free stand-in for the `wide` crate (API subset).
//!
//! The build environment for this workspace has no access to crates.io,
//! so the SIMD kernels in `autofl-nn` link against this in-tree
//! implementation instead. Only the surface those kernels use is
//! provided: [`f32x8`], a fixed eight-lane vector of `f32` with
//! element-wise arithmetic.
//!
//! # Why a plain array, not intrinsics
//!
//! [`f32x8`] is a `#[repr(C, align(32))]` newtype over `[f32; 8]` whose
//! operators are written as fixed-trip-count element-wise loops. LLVM
//! reliably turns those loops into packed SIMD instructions for the
//! target's vector width (two 128-bit ops on baseline x86-64, one
//! 256-bit op with AVX) — without `unsafe`, nightly features, or
//! per-architecture intrinsics. The newtype's job is to fix the *lane
//! width* in the kernel source so blocking decisions (packing, tails)
//! are explicit, while the instruction selection stays portable.
//!
//! # Bit-determinism contract
//!
//! Every lane is an independent IEEE-754 `f32` computation: lane `i` of
//! `a * b + c` is exactly `a[i] * b[i] + c[i]` with one rounding per
//! operation, identical to the scalar expression. There is **no fused
//! multiply-add** anywhere (Rust never contracts `a * b + c` into an
//! FMA), and no horizontal operation that would reorder additions.
//! Kernels built on this type therefore produce bit-identical results to
//! their scalar references as long as they keep each output element's
//! accumulation order unchanged — the property `autofl-nn`'s kernel
//! tests pin.

#![forbid(unsafe_code)]

use std::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// Eight lanes of `f32`, computed element-wise.
///
/// The lowercase name mirrors the real `wide` crate so swapping in the
/// crates-io package is a one-line change in the workspace manifest.
#[allow(non_camel_case_types)]
#[derive(Copy, Clone, Debug, Default, PartialEq)]
#[repr(C, align(32))]
pub struct f32x8([f32; 8]);

impl f32x8 {
    /// Number of lanes.
    pub const LANES: usize = 8;

    /// All lanes zero.
    pub const ZERO: f32x8 = f32x8([0.0; 8]);

    /// Builds a vector from eight lane values.
    #[inline(always)]
    pub const fn new(lanes: [f32; 8]) -> Self {
        f32x8(lanes)
    }

    /// Broadcasts `v` into every lane.
    #[inline(always)]
    pub const fn splat(v: f32) -> Self {
        f32x8([v; 8])
    }

    /// Loads eight lanes from the front of `src`.
    ///
    /// # Panics
    ///
    /// Panics if `src.len() < 8`.
    #[inline(always)]
    pub fn from_slice(src: &[f32]) -> Self {
        let mut lanes = [0.0f32; 8];
        lanes.copy_from_slice(&src[..8]);
        f32x8(lanes)
    }

    /// Stores the lanes into the front of `dst`.
    ///
    /// # Panics
    ///
    /// Panics if `dst.len() < 8`.
    #[inline(always)]
    pub fn write_to_slice(self, dst: &mut [f32]) {
        dst[..8].copy_from_slice(&self.0);
    }

    /// The lanes as an array.
    #[inline(always)]
    pub const fn to_array(self) -> [f32; 8] {
        self.0
    }

    /// Borrows the lanes as an array.
    #[inline(always)]
    pub const fn as_array_ref(&self) -> &[f32; 8] {
        &self.0
    }
}

impl From<[f32; 8]> for f32x8 {
    #[inline(always)]
    fn from(lanes: [f32; 8]) -> Self {
        f32x8(lanes)
    }
}

impl From<f32x8> for [f32; 8] {
    #[inline(always)]
    fn from(v: f32x8) -> Self {
        v.0
    }
}

macro_rules! elementwise_binop {
    ($trait:ident, $method:ident, $assign_trait:ident, $assign_method:ident, $assign_op:tt) => {
        impl $trait for f32x8 {
            type Output = f32x8;
            #[inline(always)]
            fn $method(mut self, rhs: f32x8) -> f32x8 {
                for i in 0..8 {
                    self.0[i] $assign_op rhs.0[i];
                }
                self
            }
        }

        impl $assign_trait for f32x8 {
            #[inline(always)]
            fn $assign_method(&mut self, rhs: f32x8) {
                for i in 0..8 {
                    self.0[i] $assign_op rhs.0[i];
                }
            }
        }
    };
}

elementwise_binop!(Add, add, AddAssign, add_assign, +=);
elementwise_binop!(Sub, sub, SubAssign, sub_assign, -=);
elementwise_binop!(Mul, mul, MulAssign, mul_assign, *=);

impl Neg for f32x8 {
    type Output = f32x8;
    #[inline(always)]
    fn neg(mut self) -> f32x8 {
        for lane in &mut self.0 {
            *lane = -*lane;
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splat_fills_all_lanes() {
        assert_eq!(f32x8::splat(2.5).to_array(), [2.5; 8]);
    }

    #[test]
    fn arithmetic_is_elementwise_and_bit_equal_to_scalar() {
        let a = [0.1f32, -2.0, 3.5, 0.0, -0.0, 1e-30, 7.25, -9.5];
        let b = [1.7f32, 0.3, -4.25, 5.0, 2.0, 3e10, -0.5, 0.125];
        let va = f32x8::new(a);
        let vb = f32x8::new(b);
        let sum = (va + vb).to_array();
        let dif = (va - vb).to_array();
        let prd = (va * vb).to_array();
        for i in 0..8 {
            assert_eq!(sum[i].to_bits(), (a[i] + b[i]).to_bits());
            assert_eq!(dif[i].to_bits(), (a[i] - b[i]).to_bits());
            assert_eq!(prd[i].to_bits(), (a[i] * b[i]).to_bits());
        }
    }

    #[test]
    fn mul_then_add_matches_scalar_two_rounding_sequence() {
        // The kernels rely on `acc += a * b` being exactly one multiply
        // rounding followed by one add rounding per lane (no FMA
        // contraction). Pin that against the scalar expression.
        let a = f32x8::splat(1.000_000_1);
        let b = f32x8::splat(3.000_000_2);
        let mut acc = f32x8::splat(0.333_333_34);
        acc += a * b;
        let scalar = 0.333_333_34f32 + 1.000_000_1f32 * 3.000_000_2f32;
        for lane in acc.to_array() {
            assert_eq!(lane.to_bits(), scalar.to_bits());
        }
    }

    #[test]
    fn slice_round_trip() {
        let src: Vec<f32> = (0..10).map(|i| i as f32).collect();
        let v = f32x8::from_slice(&src[1..]);
        assert_eq!(v.to_array(), [1., 2., 3., 4., 5., 6., 7., 8.]);
        let mut dst = [0.0f32; 9];
        v.write_to_slice(&mut dst);
        assert_eq!(&dst[..8], v.as_array_ref());
        assert_eq!(dst[8], 0.0);
    }

    #[test]
    fn neg_flips_sign_bits() {
        let v = -f32x8::new([1.0, -2.0, 0.0, -0.0, 3.5, -4.5, 5.0, -6.0]);
        assert_eq!(v.to_array(), [-1.0, 2.0, -0.0, 0.0, -3.5, 4.5, -5.0, 6.0]);
    }
}

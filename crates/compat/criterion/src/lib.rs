//! Minimal stand-in for the `criterion` benchmarking crate.
//!
//! Implements the small API surface the `autofl-bench` benches use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`Bencher::iter`], [`criterion_group!`]/[`criterion_main!`] and
//! [`black_box`] — with a simple but honest measurement loop: warm-up,
//! then `sample_size` timed samples, reporting min/median/mean.
//!
//! It also understands the arguments Cargo passes to `harness = false`
//! bench targets: `--test` (run each benchmark once, don't measure) and a
//! positional filter substring.

#![warn(missing_docs)]

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier — prevents the optimiser from deleting the
/// benchmarked computation.
#[inline]
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// How a run was invoked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Full measurement (`cargo bench`).
    Measure,
    /// Smoke-run each benchmark body once (`cargo test --benches`).
    Test,
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    mode: Mode,
    filter: Option<String>,
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut mode = Mode::Measure;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => mode = Mode::Test,
                // Harness flags Cargo or users may pass; no-ops here.
                "--bench" | "--verbose" | "--quiet" | "--noplot" | "--exact" => {}
                s if s.starts_with("--") => {}
                s => filter = Some(s.to_string()),
            }
        }
        Criterion {
            mode,
            filter,
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.default_sample_size;
        self.run_one("", &id.into(), sample_size, f);
        self
    }

    fn run_one<F>(&mut self, group: &str, id: &str, sample_size: usize, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let full = if group.is_empty() {
            id.to_string()
        } else {
            format!("{group}/{id}")
        };
        if let Some(filter) = &self.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            mode: self.mode,
            sample_size,
            samples: Vec::new(),
        };
        f(&mut bencher);
        match self.mode {
            Mode::Test => println!("test {full} ... ok"),
            Mode::Measure => bencher.report(&full),
        }
    }
}

/// A named group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Registers and runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self
            .sample_size
            .unwrap_or(self.criterion.default_sample_size);
        let name = self.name.clone();
        self.criterion.run_one(&name, &id.into(), sample_size, f);
        self
    }

    /// Ends the group (formatting hook in real criterion; no-op here).
    pub fn finish(&mut self) {}
}

/// Passed to each benchmark closure; [`Bencher::iter`] runs the timing
/// loop.
#[derive(Debug)]
pub struct Bencher {
    mode: Mode,
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, collecting the configured number of samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.mode == Mode::Test {
            black_box(routine());
            return;
        }
        // Warm-up: run until ~50ms total or 3 iterations, whichever first.
        let warm_start = Instant::now();
        let mut warm_iters = 0u32;
        while warm_iters < 3 || warm_start.elapsed() < Duration::from_millis(50) {
            black_box(routine());
            warm_iters += 1;
            if warm_iters >= 100 {
                break;
            }
        }
        let per_iter = warm_start.elapsed() / warm_iters;
        // Batch enough iterations that one sample is >= ~1ms of work.
        let batch = (Duration::from_millis(1).as_nanos() / per_iter.as_nanos().max(1)).max(1);
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples.push(t.elapsed() / batch as u32);
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<44} (no samples)");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let min = sorted[0];
        let median = sorted[sorted.len() / 2];
        let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
        println!(
            "{name:<44} min {:>12?}  median {:>12?}  mean {:>12?}  ({} samples)",
            min,
            median,
            mean,
            sorted.len()
        );
    }
}

/// Declares a group function that runs a list of benchmark functions, as in
/// real criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Declares the `main` for a `harness = false` bench binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $( $group(&mut c); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_body() {
        let mut c = Criterion {
            mode: Mode::Test,
            filter: None,
            default_sample_size: 3,
        };
        let mut ran = 0;
        let mut group = c.benchmark_group("g");
        group.sample_size(2).bench_function("inc", |b| {
            b.iter(|| {
                ran += 1;
            })
        });
        group.finish();
        assert!(ran > 0);
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion {
            mode: Mode::Test,
            filter: Some("nomatch".into()),
            default_sample_size: 3,
        };
        let mut ran = 0;
        c.bench_function("other", |b| b.iter(|| ran += 1));
        assert_eq!(ran, 0);
    }

    #[test]
    fn measure_mode_collects_samples() {
        let mut b = Bencher {
            mode: Mode::Measure,
            sample_size: 4,
            samples: Vec::new(),
        };
        b.iter(|| black_box(2u64.wrapping_mul(3)));
        assert_eq!(b.samples.len(), 4);
    }
}

//! Minimal stand-in for the `rand_distr` crate: just the [`Normal`] and
//! [`Gamma`] distributions the AutoFL simulation draws from, built on the
//! in-tree `rand` shim. Fully deterministic given a seeded generator.

#![warn(missing_docs)]

use rand::{Rng, RngCore};

/// Types that can draw samples of `T` from an [`Rng`].
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error returned by distribution constructors on invalid parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Error(&'static str);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.0)
    }
}

impl std::error::Error for Error {}

/// The normal (Gaussian) distribution `N(mean, std_dev²)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Creates `N(mean, std_dev²)`. Fails if `std_dev` is negative or
    /// non-finite.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, Error> {
        if !std_dev.is_finite() || std_dev < 0.0 {
            return Err(Error("Normal: std_dev must be finite and >= 0"));
        }
        Ok(Normal { mean, std_dev })
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.std_dev * standard_normal(rng)
    }
}

/// One standard-normal draw via Box–Muller (the cosine branch only, so one
/// draw consumes exactly two uniforms — keeps replay alignment simple).
fn standard_normal<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = unit_open(rng);
    let u2: f64 = crate::unit(rng);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[inline]
fn unit<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform in (0, 1]: avoids ln(0).
#[inline]
fn unit_open<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    ((rng.next_u64() >> 11) + 1) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// The gamma distribution with shape `k` and scale `θ`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gamma {
    shape: f64,
    scale: f64,
}

impl Gamma {
    /// Creates `Gamma(shape, scale)`. Fails unless both are positive and
    /// finite.
    pub fn new(shape: f64, scale: f64) -> Result<Self, Error> {
        if !(shape.is_finite() && shape > 0.0) {
            return Err(Error("Gamma: shape must be finite and > 0"));
        }
        if !(scale.is_finite() && scale > 0.0) {
            return Err(Error("Gamma: scale must be finite and > 0"));
        }
        Ok(Gamma { shape, scale })
    }
}

impl Distribution<f64> for Gamma {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Marsaglia–Tsang squeeze method; shape < 1 is boosted via the
        // standard U^(1/k) trick.
        let (k, boost) = if self.shape < 1.0 {
            let u: f64 = unit_open(rng);
            (self.shape + 1.0, u.powf(1.0 / self.shape))
        } else {
            (self.shape, 1.0)
        };
        let d = k - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        loop {
            let x = standard_normal(rng);
            let v = (1.0 + c * x).powi(3);
            if v <= 0.0 {
                continue;
            }
            let u: f64 = unit_open(rng);
            if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
                return d * v * boost * self.scale;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments_roughly_match() {
        let mut rng = SmallRng::seed_from_u64(12);
        let n = Normal::new(5.0, 2.0).unwrap();
        let draws: Vec<f64> = (0..20_000).map(|_| n.sample(&mut rng)).collect();
        let mean = draws.iter().sum::<f64>() / draws.len() as f64;
        let var = draws.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / draws.len() as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.25, "var {var}");
    }

    #[test]
    fn gamma_mean_roughly_matches() {
        let mut rng = SmallRng::seed_from_u64(13);
        // Mean of Gamma(k, θ) is kθ; alpha=0.1 mirrors the Dirichlet use.
        let g = Gamma::new(0.1, 1.0).unwrap();
        let draws: Vec<f64> = (0..20_000).map(|_| g.sample(&mut rng)).collect();
        assert!(draws.iter().all(|&x| x >= 0.0));
        let mean = draws.iter().sum::<f64>() / draws.len() as f64;
        assert!((mean - 0.1).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn invalid_parameters_error() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Gamma::new(0.0, 1.0).is_err());
        assert!(Gamma::new(1.0, 0.0).is_err());
    }

    #[test]
    fn sampling_is_deterministic() {
        let n = Normal::new(0.0, 1.0).unwrap();
        let a: Vec<f64> = {
            let mut rng = SmallRng::seed_from_u64(99);
            (0..32).map(|_| n.sample(&mut rng)).collect()
        };
        let b: Vec<f64> = {
            let mut rng = SmallRng::seed_from_u64(99);
            (0..32).map(|_| n.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}

//! JSON text half of the in-tree serde shim: renders [`serde::Value`]
//! trees to JSON and parses JSON back, exposing the `to_string` /
//! `to_string_pretty` / `from_str` entry points of the real `serde_json`
//! so call sites survive a swap to the crates.io package unchanged.
//!
//! Output is deterministic: struct fields keep declaration order and
//! floats print via Rust's shortest round-trip formatting, so serialize →
//! parse → serialize is a fixed point (used by the spec round-trip tests).

#![warn(missing_docs)]

pub use serde::{Error, Value};

/// Serializes any [`serde::Serialize`] type to its [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Reconstructs a [`serde::Deserialize`] type from a [`Value`] tree.
pub fn from_value<T: serde::Deserialize>(value: &Value) -> Result<T, Error> {
    T::from_value(value)
}

/// Serializes to compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes to human-editable JSON (two-space indentation).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any [`serde::Deserialize`] type.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T, Error> {
    T::from_value(&parse(text)?)
}

/// Parses JSON text into a raw [`Value`] tree.
pub fn parse(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(value)
}

// ---------------------------------------------------------------------------
// Writer.
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, level: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // `{:?}` is Rust's shortest representation that parses
                // back to the same bits.
                out.push_str(&format!("{f:?}"));
            } else {
                // JSON has no Inf/NaN; mirror serde_json's `null`.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline(out, indent, level);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline(out, indent, level + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1);
            }
            newline(out, indent, level);
            out.push('}');
        }
    }
}

fn newline(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat(' ').take(width * level));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser.
// ---------------------------------------------------------------------------

/// Maximum container nesting the parser accepts (matches the real
/// serde_json's default recursion limit); deeper input is a parse error
/// rather than a stack overflow.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> Error {
        Error::custom(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{kw}`")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.eat_keyword("null").map(|()| Value::Null),
            Some(b't') => self.eat_keyword("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.eat_keyword("false").map(|()| Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.nested(Self::seq),
            Some(b'{') => self.nested(Self::map),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.err(&format!("unexpected byte `{}`", other as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn nested(&mut self, parse: fn(&mut Self) -> Result<Value, Error>) -> Result<Value, Error> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err("recursion limit exceeded"));
        }
        self.depth += 1;
        let result = parse(self);
        self.depth -= 1;
        result
    }

    fn seq(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn map(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain UTF-8 up to the next quote/escape.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let code = self.hex4()?;
                            // Surrogate pairs are not needed by any spec
                            // file; reject rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("unsupported \\u escape"))?;
                            s.push(c);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' | b'-' | b'+' => self.pos += 1,
                b'.' | b'e' | b'E' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII number characters");
        if !is_float {
            if let Some(stripped) = text.strip_prefix('-') {
                if let Ok(i) = stripped.parse::<i64>() {
                    return Ok(Value::Int(-i));
                }
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        // JSON has no NaN/Infinity tokens, and an overflowing literal
        // like `1e999` must not silently become f64::INFINITY either —
        // reject any non-finite result, matching the real serde_json.
        match text.parse::<f64>() {
            Ok(f) if f.is_finite() => Ok(Value::Float(f)),
            Ok(_) => Err(Error::custom(format!(
                "number `{text}` is out of the finite f64 range"
            ))),
            Err(_) => Err(Error::custom(format!("invalid number `{text}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip_through_text() {
        for v in [
            Value::Null,
            Value::Bool(true),
            Value::Int(-42),
            Value::UInt(u64::MAX),
            Value::Float(0.1),
            Value::Float(2.0),
            Value::Str("he\"llo\n".into()),
        ] {
            let text = to_string(&v).unwrap();
            assert_eq!(parse(&text).unwrap(), v, "text was {text}");
        }
    }

    #[test]
    fn nested_structure_roundtrips_pretty_and_compact() {
        let v = Value::Map(vec![
            ("name".into(), Value::Str("fig04".into())),
            (
                "seeds".into(),
                Value::Seq(vec![Value::UInt(1), Value::UInt(2)]),
            ),
            ("nested".into(), Value::Map(vec![("x".into(), Value::Null)])),
            ("empty".into(), Value::Seq(vec![])),
        ]);
        for text in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            assert_eq!(parse(&text).unwrap(), v, "text was {text}");
        }
    }

    #[test]
    fn serialize_parse_serialize_is_a_fixed_point() {
        let v = Value::Map(vec![
            ("f".into(), Value::Float(0.30000000000000004)),
            ("g".into(), Value::Float(1e300)),
        ]);
        let a = to_string_pretty(&v).unwrap();
        let b = to_string_pretty(&parse(&a).unwrap()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,", "{\"a\":}", "tru", "\"unterminated", "1 2"] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn deep_nesting_is_a_parse_error_not_a_stack_overflow() {
        let deep = "[".repeat(100_000);
        let err = parse(&deep).unwrap_err();
        assert!(err.to_string().contains("recursion"), "{err}");
        // Nesting inside the limit still parses.
        let ok = format!("{}{}", "[".repeat(100), "]".repeat(100));
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn nan_and_infinity_are_rejected_on_parse() {
        // Bare non-finite tokens are not JSON...
        for bad in ["NaN", "nan", "Infinity", "-Infinity", "inf", "-inf"] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
        // ...and literals that overflow f64 must not sneak in as ±Inf.
        for bad in ["1e999", "-1e999", "1e400000"] {
            let err = parse(bad).unwrap_err();
            assert!(err.to_string().contains("finite"), "{bad}: {err}");
        }
        // The largest finite magnitudes still parse.
        assert_eq!(
            parse("1.7976931348623157e308").unwrap(),
            Value::Float(f64::MAX)
        );
        assert_eq!(
            parse("-1.7976931348623157e308").unwrap(),
            Value::Float(f64::MIN)
        );
    }

    #[test]
    fn non_finite_floats_serialize_as_null() {
        // The writer has no non-finite representation either; it mirrors
        // the real serde_json's `null`.
        for v in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert_eq!(to_string(&Value::Float(v)).unwrap(), "null");
        }
    }

    #[test]
    fn shortest_round_trip_floats_reparse_to_identical_bits() {
        for f in [
            0.1,
            1.0 / 3.0,
            0.30000000000000004,
            -2.5e-10,
            1e300,
            -1e-300,
            f64::MIN_POSITIVE,       // smallest normal
            f64::MIN_POSITIVE / 4.0, // subnormal
            f64::MAX,
            -0.0,
            0.0,
            123456789.12345679,
            2.0f64.powi(-53),
        ] {
            let text = to_string(&Value::Float(f)).unwrap();
            match parse(&text).unwrap() {
                Value::Float(g) => assert_eq!(
                    g.to_bits(),
                    f.to_bits(),
                    "{f:e} -> {text} -> {g:e} lost bits"
                ),
                // -0.0 and 0.0 print as "-0.0"/"0.0": still floats.
                other => panic!("{text} reparsed as {other:?}"),
            }
        }
    }

    #[test]
    fn duplicate_keys_are_preserved_in_order_and_get_returns_the_first() {
        // Pin the shim's duplicate-key semantics: the parser keeps every
        // entry in input order (no last-wins overwrite), `get` resolves
        // to the first occurrence, and struct deserialization therefore
        // reads the first value too.
        let v = parse("{\"a\":1,\"b\":2,\"a\":3}").unwrap();
        match &v {
            Value::Map(entries) => {
                assert_eq!(entries.len(), 3, "duplicates must not collapse");
                assert_eq!(entries[0], ("a".into(), Value::UInt(1)));
                assert_eq!(entries[2], ("a".into(), Value::UInt(3)));
            }
            other => panic!("expected a map, got {other:?}"),
        }
        assert_eq!(v.get("a"), Some(&Value::UInt(1)), "get takes the first");
        let x: u64 = from_value(v.get("a").unwrap()).unwrap();
        assert_eq!(x, 1);
    }

    #[test]
    fn depth_limit_applies_to_maps_and_mixed_nesting() {
        // Arrays-only rejection is covered above; maps and alternating
        // container kinds must hit the same recursion limit.
        let deep_maps = "{\"k\":".repeat(200) + "1" + &"}".repeat(200);
        let err = parse(&deep_maps).unwrap_err();
        assert!(err.to_string().contains("recursion"), "{err}");
        let mixed = "[{\"k\":".repeat(100) + "1" + &"}]".repeat(100);
        let err = parse(&mixed).unwrap_err();
        assert!(err.to_string().contains("recursion"), "{err}");
        // Within the limit both parse fine.
        let ok_maps = "{\"k\":".repeat(60) + "1" + &"}".repeat(60);
        assert!(parse(&ok_maps).is_ok());
    }

    #[test]
    fn integers_keep_64_bit_precision() {
        let text = format!("{}", u64::MAX);
        assert_eq!(parse(&text).unwrap(), Value::UInt(u64::MAX));
        assert_eq!(
            parse("-9007199254740993").unwrap(),
            Value::Int(-9007199254740993)
        );
    }

    #[test]
    fn unicode_escapes_decode() {
        assert_eq!(parse("\"\\u00e9\"").unwrap(), Value::Str("é".into()));
    }
}

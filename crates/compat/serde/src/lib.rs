//! Minimal stand-in for the `serde` crate with a *real* data model.
//!
//! The build environment cannot fetch crates.io, so this shim supplies the
//! subset of serde the workspace actually uses: `Serialize`/`Deserialize`
//! traits routed through a self-describing [`Value`] tree, plus derive
//! macros (from the sibling `serde_derive` shim) that generate genuine
//! field-by-field implementations for plain structs and enums. The
//! `serde_json` compat crate renders [`Value`] to JSON text and parses it
//! back, which is what `ExperimentSpec` files and the JSONL round sinks
//! ride on. Swapping for the real serde is still a one-line change in
//! `[workspace.dependencies]`; call sites only use `derive`,
//! `serde_json::to_string*` and `serde_json::from_str`, which the real
//! crates provide verbatim.
//!
//! Encoding conventions (matching serde's external tagging):
//!
//! * named-field structs → [`Value::Map`] in declaration order,
//! * newtype structs → the inner value,
//! * unit enum variants → [`Value::Str`] of the variant name,
//! * data-carrying variants → single-entry map `{ "Variant": payload }`.

#![warn(missing_docs)]

// The derives emit `impl serde::... for T`; inside this crate's own tests
// that path must resolve back to us.
#[cfg(test)]
extern crate self as serde;

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized tree — the meeting point of
/// [`Serialize`], [`Deserialize`] and the `serde_json` text format.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (also `Option::None`).
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer (negative number literals).
    Int(i64),
    /// An unsigned integer (non-negative number literals).
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string (also unit enum variants).
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered map with string keys (structs, struct variants).
    Map(Vec<(String, Value)>),
}

/// A `'static` null, so absent map fields can be handed out by reference.
pub const NULL: Value = Value::Null;

impl Value {
    /// Human-readable name of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }

    /// Looks up a key in a [`Value::Map`].
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// A (de)serialization error: a message plus the path where it happened.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    msg: String,
    path: Vec<String>,
}

impl Error {
    /// An error with a custom message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error {
            msg: msg.into(),
            path: Vec::new(),
        }
    }

    /// "Expected X, found Y" for a mistyped value.
    pub fn invalid_type(expected: &str, found: &Value) -> Self {
        Error::custom(format!("expected {expected}, found {}", found.kind()))
    }

    /// An enum variant name that the type does not have.
    pub fn unknown_variant(ty: &str, variant: &str) -> Self {
        Error::custom(format!("unknown {ty} variant `{variant}`"))
    }

    /// Returns the error with `segment` prepended to its path (derives
    /// call this as errors bubble out of nested fields).
    #[must_use]
    pub fn at(mut self, segment: &str) -> Self {
        self.path.insert(0, segment.to_string());
        self
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.path.is_empty() {
            write!(f, "{}", self.msg)
        } else {
            write!(f, "{}: {}", self.path.join("."), self.msg)
        }
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves into a [`Value`] tree.
pub trait Serialize {
    /// Serializes `self`.
    fn to_value(&self) -> Value;
}

/// Types that can reconstruct themselves from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Deserializes from `value`.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Helpers the derive-generated code calls (public, but not part of the
// intended user surface).
// ---------------------------------------------------------------------------

/// Map-field lookup that treats an absent key as `null`, so `Option`
/// fields may simply be omitted from spec files.
pub fn field_or_null<'a>(value: &'a Value, name: &str) -> &'a Value {
    value.get(name).unwrap_or(&NULL)
}

/// Wraps a data-carrying enum variant: `{ "Variant": payload }`.
pub fn variant(name: &str, payload: Value) -> Value {
    Value::Map(vec![(name.to_string(), payload)])
}

/// Splits a single-entry map into `(variant name, payload)`.
pub fn variant_parts(value: &Value) -> Option<(&str, &Value)> {
    match value {
        Value::Map(entries) if entries.len() == 1 => Some((entries[0].0.as_str(), &entries[0].1)),
        _ => None,
    }
}

/// Expects a sequence of exactly `n` elements (tuple structs/variants).
pub fn seq_of<'a>(value: &'a Value, ty: &str, n: usize) -> Result<&'a [Value], Error> {
    match value {
        Value::Seq(items) if items.len() == n => Ok(items),
        Value::Seq(items) => Err(Error::custom(format!(
            "{ty} expects {n} elements, found {}",
            items.len()
        ))),
        other => Err(Error::invalid_type("sequence", other)),
    }
}

// ---------------------------------------------------------------------------
// Implementations for the primitive / container types the workspace uses.
// ---------------------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw = match value {
                    Value::UInt(u) => *u,
                    Value::Int(i) if *i >= 0 => *i as u64,
                    other => return Err(Error::invalid_type("unsigned integer", other)),
                };
                <$t>::try_from(raw).map_err(|_| {
                    Error::custom(format!(
                        "{raw} out of range for {}", stringify!($t)
                    ))
                })
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw = match value {
                    Value::Int(i) => *i,
                    Value::UInt(u) => i64::try_from(*u)
                        .map_err(|_| Error::custom(format!("{u} overflows i64")))?,
                    other => return Err(Error::invalid_type("integer", other)),
                };
                <$t>::try_from(raw).map_err(|_| {
                    Error::custom(format!(
                        "{raw} out of range for {}", stringify!($t)
                    ))
                })
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            Value::UInt(u) => Ok(*u as f64),
            other => Err(Error::invalid_type("number", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        // f32 → f64 is exact, so the round-trip recovers the f32 bits.
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        f64::from_value(value).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::invalid_type("bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::invalid_type("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Seq(items) => items
                .iter()
                .enumerate()
                .map(|(i, v)| T::from_value(v).map_err(|e| e.at(&format!("[{i}]"))))
                .collect(),
            other => Err(Error::invalid_type("sequence", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // `use serde_derive::...` resolves to the proc-macro crate; within this
    // crate's tests we exercise the full `#[derive]` path end to end.
    #[derive(crate::Serialize, crate::Deserialize, Debug, PartialEq)]
    struct Plain {
        x: u32,
        label: String,
        maybe: Option<f64>,
    }

    #[derive(crate::Serialize, crate::Deserialize, Debug, PartialEq)]
    struct Newtype(usize);

    #[derive(crate::Serialize, crate::Deserialize, Debug, PartialEq)]
    enum Kind {
        A,
        B(u8),
        C { lr: f32, steps: usize },
    }

    fn roundtrip<T: Serialize + Deserialize + PartialEq + std::fmt::Debug>(v: T) {
        let got = T::from_value(&v.to_value()).expect("round-trip");
        assert_eq!(got, v);
    }

    #[test]
    fn struct_roundtrips_field_by_field() {
        roundtrip(Plain {
            x: 7,
            label: "hi".into(),
            maybe: Some(0.25),
        });
        roundtrip(Plain {
            x: 0,
            label: String::new(),
            maybe: None,
        });
    }

    #[test]
    fn missing_optional_field_defaults_to_none() {
        let v = Value::Map(vec![
            ("x".into(), Value::UInt(1)),
            ("label".into(), Value::Str("l".into())),
        ]);
        let p = Plain::from_value(&v).expect("missing Option field is fine");
        assert_eq!(p.maybe, None);
    }

    #[test]
    fn missing_required_field_errors_with_path() {
        let v = Value::Map(vec![("x".into(), Value::UInt(1))]);
        let err = Plain::from_value(&v).unwrap_err();
        assert!(err.to_string().contains("label"), "{err}");
    }

    #[test]
    fn newtype_is_transparent() {
        assert_eq!(Newtype(9).to_value(), Value::UInt(9));
        roundtrip(Newtype(9));
    }

    #[test]
    fn enum_variants_roundtrip() {
        roundtrip(Kind::A);
        roundtrip(Kind::B(3));
        roundtrip(Kind::C {
            lr: 0.125,
            steps: 10,
        });
        assert_eq!(Kind::A.to_value(), Value::Str("A".into()));
        assert!(matches!(Kind::B(1).to_value(), Value::Map(_)));
    }

    #[test]
    fn unknown_variant_is_an_error() {
        let err = Kind::from_value(&Value::Str("Z".into())).unwrap_err();
        assert!(err.to_string().contains("unknown"), "{err}");
    }

    #[test]
    fn numeric_coercions_are_checked() {
        assert_eq!(u8::from_value(&Value::UInt(255)).unwrap(), 255);
        assert!(u8::from_value(&Value::UInt(256)).is_err());
        assert!(usize::from_value(&Value::Int(-1)).is_err());
        assert_eq!(f64::from_value(&Value::Int(-2)).unwrap(), -2.0);
        assert_eq!(f32::from_value(&Value::Float(0.1)).unwrap(), 0.1f32);
    }
}

//! Minimal stand-in for the `serde` crate.
//!
//! The workspace derives `Serialize`/`Deserialize` on its config and
//! result types so a future PR can persist simulation outputs, but nothing
//! serializes yet and the build environment cannot fetch the real serde.
//! This shim supplies marker traits plus derive macros (from the sibling
//! `serde_derive` shim) that emit marker impls, so the annotations compile
//! unchanged and can be swapped for real serde without touching call
//! sites.

#![warn(missing_docs)]

// The derives emit `impl serde::... for T`; inside this crate's own tests
// that path must resolve back to us.
#[cfg(test)]
extern crate self as serde;

pub use serde_derive::{Deserialize, Serialize};

/// Marker standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker standing in for `serde::Deserialize`.
///
/// The real trait carries a `'de` lifetime; the marker drops it because no
/// code in this workspace names the lifetime.
pub trait Deserialize {}

#[cfg(test)]
mod tests {
    // `use serde_derive::...` resolves to the proc-macro crate; within this
    // crate's tests we exercise the full `#[derive]` path end to end.
    #[derive(crate::Serialize, crate::Deserialize, Debug, PartialEq)]
    struct Plain {
        x: u32,
    }

    #[derive(crate::Serialize, crate::Deserialize, Debug, PartialEq)]
    enum Kind {
        A,
        B(u8),
    }

    fn assert_marker<T: crate::Serialize + crate::Deserialize>() {}

    #[test]
    fn derives_produce_marker_impls() {
        assert_marker::<Plain>();
        assert_marker::<Kind>();
        assert_eq!(Plain { x: 1 }, Plain { x: 1 });
        assert_ne!(Kind::A, Kind::B(0));
    }
}

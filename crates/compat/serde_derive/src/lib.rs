//! Derive-macro half of the in-tree `serde` shim.
//!
//! Generates genuine field-by-field `Serialize`/`Deserialize`
//! implementations against the shim's `Value` data model — named-field
//! structs become maps in declaration order, newtype structs are
//! transparent, unit enum variants become strings and data-carrying
//! variants become single-entry maps (serde's external tagging). The
//! parser is hand-rolled over `proc_macro::TokenStream` (no `syn`), which
//! covers every plain (non-generic) type in this workspace; generic items
//! get no impl rather than a wrong one.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Some(item) => gen_serialize(&item).parse().unwrap_or_default(),
        None => TokenStream::new(),
    }
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Some(item) => gen_deserialize(&item).parse().unwrap_or_default(),
        None => TokenStream::new(),
    }
}

// ---------------------------------------------------------------------------
// A minimal item model.
// ---------------------------------------------------------------------------

enum Fields {
    /// Named fields, in declaration order.
    Named(Vec<String>),
    /// Tuple fields (arity only — the generated code never names types).
    Tuple(usize),
    /// No payload.
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

// ---------------------------------------------------------------------------
// Parsing.
// ---------------------------------------------------------------------------

/// Parses `struct`/`enum` definitions far enough to know the name, the
/// field names and the variant shapes. Returns `None` for shapes the
/// generator does not support (generics, unions).
fn parse_item(input: TokenStream) -> Option<Item> {
    let mut tokens = input.into_iter().peekable();

    // Skip attributes and qualifiers until `struct` / `enum`.
    let mut keyword = None;
    while let Some(tt) = tokens.next() {
        match tt {
            TokenTree::Punct(ref p) if p.as_char() == '#' => {
                tokens.next(); // the [...] group
            }
            TokenTree::Ident(ref id) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" {
                    keyword = Some(s);
                    break;
                }
                if s == "union" {
                    return None;
                }
            }
            _ => {}
        }
    }
    let keyword = keyword?;
    let name = match tokens.next() {
        Some(TokenTree::Ident(n)) => n.to_string(),
        _ => return None,
    };

    // Bail on generic items: a blind impl would be wrong.
    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() == '<' {
            return None;
        }
    }

    if keyword == "enum" {
        let body = next_group(&mut tokens, Delimiter::Brace)?;
        let variants = parse_variants(body)?;
        return Some(Item::Enum { name, variants });
    }

    // Struct: named `{...}`, tuple `(...);` or unit `;`.
    match tokens.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Some(Item::Struct {
            fields: Fields::Named(parse_named_fields(g.stream())?),
            name,
        }),
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            Some(Item::Struct {
                fields: Fields::Tuple(count_tuple_fields(g.stream())),
                name,
            })
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Some(Item::Struct {
            fields: Fields::Unit,
            name,
        }),
        _ => None,
    }
}

fn next_group(
    tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>,
    delim: Delimiter,
) -> Option<TokenStream> {
    loop {
        match tokens.next()? {
            TokenTree::Group(g) if g.delimiter() == delim => return Some(g.stream()),
            TokenTree::Punct(p) if p.as_char() == '#' => {
                tokens.next();
            }
            TokenTree::Ident(_) => {}
            _ => return None,
        }
    }
}

/// Splits a brace-group body into top-level comma-separated chunks.
/// Delimited groups arrive as single `TokenTree::Group`s, so only `<`/`>`
/// need explicit depth tracking.
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut chunks = vec![Vec::new()];
    let mut depth = 0i32;
    for tt in stream {
        if let TokenTree::Punct(ref p) = tt {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    chunks.push(Vec::new());
                    continue;
                }
                _ => {}
            }
        }
        chunks.last_mut().expect("non-empty").push(tt);
    }
    chunks.retain(|c| !c.is_empty());
    chunks
}

/// `#[attr] pub(crate) name: Type` → `name`, per top-level chunk.
fn parse_named_fields(stream: TokenStream) -> Option<Vec<String>> {
    split_top_level(stream)
        .into_iter()
        .map(|chunk| field_name(&chunk))
        .collect()
}

fn field_name(chunk: &[TokenTree]) -> Option<String> {
    let mut i = 0;
    while i < chunk.len() {
        match &chunk[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2, // attr group
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(_)) = chunk.get(i) {
                    i += 1; // pub(crate)
                }
            }
            TokenTree::Ident(id) => {
                // The field name is the ident right before the `:`.
                return match chunk.get(i + 1) {
                    Some(TokenTree::Punct(p)) if p.as_char() == ':' => Some(id.to_string()),
                    _ => None,
                };
            }
            _ => return None,
        }
    }
    None
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    split_top_level(stream).len()
}

fn parse_variants(stream: TokenStream) -> Option<Vec<Variant>> {
    split_top_level(stream)
        .into_iter()
        .map(|chunk| {
            let mut i = 0;
            // Skip attributes (doc comments included).
            while let Some(TokenTree::Punct(p)) = chunk.get(i) {
                if p.as_char() != '#' {
                    break;
                }
                i += 2;
            }
            let name = match chunk.get(i) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                _ => return None,
            };
            let fields = match chunk.get(i + 1) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream())?)
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                None => Fields::Unit,
                // `= discriminant` and anything else unsupported.
                _ => return None,
            };
            Some(Variant { name, fields })
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Code generation.
// ---------------------------------------------------------------------------

/// `{ "field": to_value(&<prefix>field), ... }` map construction.
fn ser_named(fields: &[String], prefix: &str) -> String {
    let entries: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from(\"{f}\"), \
                 serde::Serialize::to_value(&{prefix}{f}))"
            )
        })
        .collect();
    format!("serde::Value::Map(::std::vec![{}])", entries.join(", "))
}

/// Field-by-field struct-literal body for deserialization.
fn de_named(fields: &[String], ty_path: &str, source: &str) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "{f}: serde::Deserialize::from_value(serde::field_or_null({source}, \"{f}\"))\
                 .map_err(|e| e.at(\"{f}\"))?"
            )
        })
        .collect();
    format!("{ty_path} {{ {} }}", inits.join(", "))
}

fn gen_serialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(fs) => ser_named(fs, "self."),
                Fields::Tuple(1) => "serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("serde::Value::Seq(::std::vec![{}])", items.join(", "))
                }
                Fields::Unit => "serde::Value::Null".to_string(),
            };
            (name, body)
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => format!(
                            "{name}::{vn} => \
                             serde::Value::Str(::std::string::String::from(\"{vn}\")),"
                        ),
                        Fields::Tuple(1) => format!(
                            "{name}::{vn}(f0) => \
                             serde::variant(\"{vn}\", serde::Serialize::to_value(f0)),"
                        ),
                        Fields::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => serde::variant(\"{vn}\", \
                                 serde::Value::Seq(::std::vec![{}])),",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        Fields::Named(fs) => {
                            let map = ser_named(fs, "");
                            format!(
                                "{name}::{vn} {{ {} }} => serde::variant(\"{vn}\", {map}),",
                                fs.join(", ")
                            )
                        }
                    }
                })
                .collect();
            (name, format!("match self {{ {} }}", arms.join(" ")))
        }
    };
    format!(
        "impl serde::Serialize for {name} {{\n\
         fn to_value(&self) -> serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(fs) => {
                    let lit = de_named(fs, name, "value");
                    format!(
                        "match value {{\n\
                         serde::Value::Map(_) => ::core::result::Result::Ok({lit}),\n\
                         other => ::core::result::Result::Err(\
                         serde::Error::invalid_type(\"map\", other)),\n\
                         }}"
                    )
                }
                Fields::Tuple(1) => format!(
                    "::core::result::Result::Ok({name}(\
                     serde::Deserialize::from_value(value)?))"
                ),
                Fields::Tuple(n) => {
                    let inits: Vec<String> = (0..*n)
                        .map(|i| {
                            format!(
                                "serde::Deserialize::from_value(&items[{i}])\
                                 .map_err(|e| e.at(\"{i}\"))?"
                            )
                        })
                        .collect();
                    format!(
                        "{{ let items = serde::seq_of(value, \"{name}\", {n})?;\n\
                         ::core::result::Result::Ok({name}({})) }}",
                        inits.join(", ")
                    )
                }
                Fields::Unit => format!("::core::result::Result::Ok({name})"),
            };
            (name, body)
        }
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .map(|v| {
                    format!(
                        "\"{vn}\" => ::core::result::Result::Ok({name}::{vn}),",
                        vn = v.name
                    )
                })
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    let build = match &v.fields {
                        Fields::Unit => return None,
                        Fields::Tuple(1) => format!(
                            "::core::result::Result::Ok({name}::{vn}(\
                             serde::Deserialize::from_value(payload)\
                             .map_err(|e| e.at(\"{vn}\"))?))"
                        ),
                        Fields::Tuple(n) => {
                            let inits: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!(
                                        "serde::Deserialize::from_value(&items[{i}])\
                                         .map_err(|e| e.at(\"{vn}\"))?"
                                    )
                                })
                                .collect();
                            format!(
                                "{{ let items = serde::seq_of(payload, \"{name}::{vn}\", {n})?;\n\
                                 ::core::result::Result::Ok({name}::{vn}({})) }}",
                                inits.join(", ")
                            )
                        }
                        Fields::Named(fs) => format!(
                            "::core::result::Result::Ok({})",
                            de_named(fs, &format!("{name}::{vn}"), "payload")
                        ),
                    };
                    Some(format!(
                        "::core::option::Option::Some((\"{vn}\", payload)) => {build},"
                    ))
                })
                .collect();
            let body = format!(
                "match value {{\n\
                 serde::Value::Str(s) => match s.as_str() {{\n\
                 {units}\n\
                 other => ::core::result::Result::Err(\
                 serde::Error::unknown_variant(\"{name}\", other)),\n\
                 }},\n\
                 _ => match serde::variant_parts(value) {{\n\
                 {datas}\n\
                 ::core::option::Option::Some((other, _)) => \
                 ::core::result::Result::Err(\
                 serde::Error::unknown_variant(\"{name}\", other)),\n\
                 ::core::option::Option::None => ::core::result::Result::Err(\
                 serde::Error::invalid_type(\"{name} variant\", value)),\n\
                 }},\n\
                 }}",
                units = unit_arms.join("\n"),
                datas = data_arms.join("\n"),
            );
            (name, body)
        }
    };
    format!(
        "impl serde::Deserialize for {name} {{\n\
         fn from_value(value: &serde::Value) \
         -> ::core::result::Result<{name}, serde::Error> {{\n\
         {body}\n\
         }}\n\
         }}"
    )
}

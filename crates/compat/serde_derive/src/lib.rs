//! Derive-macro half of the in-tree `serde` shim.
//!
//! The real `serde_derive` generates (de)serialization impls; nothing in
//! this workspace serializes yet, so these derives only have to make
//! `#[derive(Serialize, Deserialize)]` compile. They parse the item just
//! far enough to find its name and emit a marker-trait impl, so code can
//! still take `T: serde::Serialize` bounds.

use proc_macro::{TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "Serialize")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "Deserialize")
}

/// Emits `impl serde::<Trait> for <Name><generic params>` with the type's
/// own generics echoed verbatim. Gives up (emits nothing) on shapes it
/// doesn't recognise rather than erroring, since the marker impl is
/// best-effort.
fn marker_impl(input: TokenStream, trait_name: &str) -> TokenStream {
    let mut tokens = input.into_iter().peekable();

    // Skip attributes (`#[...]`) and visibility / qualifier keywords until
    // the `struct` / `enum` / `union` keyword.
    let mut name: Option<String> = None;
    while let Some(tt) = tokens.next() {
        match tt {
            TokenTree::Punct(ref p) if p.as_char() == '#' => {
                // Consume the following [...] group.
                tokens.next();
            }
            TokenTree::Ident(ref id) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" || s == "union" {
                    if let Some(TokenTree::Ident(n)) = tokens.next() {
                        name = Some(n.to_string());
                    }
                    break;
                }
            }
            _ => {}
        }
    }
    let Some(name) = name else {
        return TokenStream::new();
    };

    // Collect generic parameters, if any: everything between the top-level
    // `<` and its matching `>` right after the name.
    let mut generics = String::new();
    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() == '<' {
            let mut depth = 0i32;
            for tt in tokens.by_ref() {
                if let TokenTree::Punct(ref p) = tt {
                    match p.as_char() {
                        '<' => depth += 1,
                        '>' => depth -= 1,
                        _ => {}
                    }
                }
                generics.push_str(&tt.to_string());
                generics.push(' ');
                if depth == 0 {
                    break;
                }
            }
        }
    }

    // Lifetimes/const params make a blind `impl<G> Trait for Name<G>`
    // fragile; bail to the no-impl fallback for anything generic. Every
    // derive in this workspace is on a plain type today.
    if !generics.is_empty() {
        return TokenStream::new();
    }
    // Skip any `where` clause or body — not needed for a marker impl.
    let _ = tokens.last();

    format!("impl serde::{trait_name} for {name} {{}}")
        .parse()
        .unwrap_or_else(|_| TokenStream::new())
}

//! Minimal stand-in for the `proptest` crate.
//!
//! Supports the subset used by `tests/state_properties.rs`: the
//! [`proptest!`] macro (with an optional `#![proptest_config(..)]` inner
//! attribute), range strategies for integers and floats,
//! [`bool::ANY`], and the `prop_assert*` macros.
//!
//! Unlike real proptest there is no shrinking and no failure-persistence
//! file; inputs are drawn from a seeded deterministic generator, so a
//! failing case reproduces identically on every run — which is exactly the
//! reproducibility contract the rest of this workspace follows.

#![warn(missing_docs)]

use rand::rngs::SmallRng;
use rand::{SampleUniform, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// Everything a `proptest!` test file needs in scope.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{ProptestConfig, Strategy};
}

/// Runner configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of random test inputs.
pub trait Strategy {
    /// The value type produced.
    type Value;

    /// Draws one input.
    fn pick(&self, rng: &mut SmallRng) -> Self::Value;
}

impl<T: SampleUniform> Strategy for Range<T> {
    type Value = T;

    fn pick(&self, rng: &mut SmallRng) -> T {
        use rand::Rng;
        rng.gen_range(self.clone())
    }
}

impl<T: SampleUniform> Strategy for RangeInclusive<T> {
    type Value = T;

    fn pick(&self, rng: &mut SmallRng) -> T {
        use rand::Rng;
        rng.gen_range(self.clone())
    }
}

/// Boolean strategies, mirroring `proptest::bool`.
pub mod bool {
    use super::{SmallRng, Strategy};

    /// Strategy yielding `true` or `false` with equal probability.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The canonical boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn pick(&self, rng: &mut SmallRng) -> bool {
            use rand::Rng;
            rng.gen_bool(0.5)
        }
    }
}

/// Stable per-test seed so each property sees its own input stream but the
/// stream never changes between runs.
pub fn seed_for(test_name: &str) -> u64 {
    // FNV-1a, folded with a workspace tag.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^ 0xA070_F1A0_70F1
}

/// Builds the deterministic RNG for one property.
pub fn rng_for(test_name: &str) -> SmallRng {
    SmallRng::seed_from_u64(seed_for(test_name))
}

/// Defines property tests. Each `arg in strategy` binding is drawn fresh
/// for every case; the body runs `config.cases` times.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::rng_for(stringify!($name));
                for case in 0..config.cases {
                    $(
                        let $arg = $crate::Strategy::pick(&($strat), &mut rng);
                    )*
                    let run = || {
                        $body
                    };
                    if let Err(e) = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run)) {
                        eprintln!(
                            "proptest case {case} of {} failed with inputs: {}",
                            stringify!($name),
                            [$(format!("{} = {:?}", stringify!($arg), $arg)),*].join(", "),
                        );
                        ::std::panic::resume_unwind(e);
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name( $($arg in $strat),* ) $body
            )*
        }
    };
}

/// Asserts a condition inside a property (panics with context on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Range strategies stay in bounds.
        #[test]
        fn ranges_in_bounds(
            x in 3usize..10,
            y in -5i32..=5,
            f in 0.25f64..0.75,
            b in crate::bool::ANY,
        ) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-5..=5).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
            prop_assert!([true, false].contains(&b));
            prop_assert_eq!(x, x);
            prop_assert_ne!(f, f + 1.0);
        }
    }

    #[test]
    fn seeds_are_stable_and_distinct() {
        assert_eq!(crate::seed_for("a"), crate::seed_for("a"));
        assert_ne!(crate::seed_for("a"), crate::seed_for("b"));
    }
}

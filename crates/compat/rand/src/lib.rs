//! Minimal, dependency-free stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment for this workspace has no access to crates.io, so
//! the simulation links against this in-tree implementation instead. Only
//! the surface actually used by the AutoFL crates is provided:
//!
//! * [`rngs::SmallRng`] — a seedable xoshiro256++ generator,
//! * [`Rng`] — `gen`, `gen_range`, `gen_bool`,
//! * [`SeedableRng`] — `seed_from_u64` / `from_seed`,
//! * [`seq::SliceRandom`] — `shuffle` and `choose`.
//!
//! Everything here is fully deterministic: the same seed produces the same
//! stream on every platform and every run, which is what the workspace's
//! determinism tests (`tests/determinism.rs`) rely on. There is
//! intentionally no `thread_rng`/`from_entropy` — all randomness in the
//! simulation must flow from an explicit seed.

#![warn(missing_docs)]

pub mod rngs;
pub mod seq;

mod uniform;

pub use uniform::{SampleRange, SampleUniform};

/// A source of random `u32`/`u64` values. Object-safe core of [`Rng`].
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be produced uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Returns a uniformly random value of type `T` (for floats: in
    /// `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// Returns a value uniformly distributed over `range`.
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::draw(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed;

    /// Builds the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with SplitMix64 as
    /// the reference `rand` implementation does.
    fn seed_from_u64(state: u64) -> Self;
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..1000 {
            let i = rng.gen_range(3usize..17);
            assert!((3..17).contains(&i));
            let j = rng.gen_range(-1i32..=1);
            assert!((-1..=1).contains(&j));
            let f = rng.gen_range(-2.5f64..2.5);
            assert!((-2.5..2.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(11);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}

//! Slice helpers mirroring `rand::seq::SliceRandom`.

use crate::Rng;

/// Random slice operations: in-place shuffle and uniform element choice.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: Rng>(&mut self, rng: &mut R);

    /// Returns a uniformly chosen element, or `None` if empty.
    fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_from_empty_is_none() {
        let mut rng = SmallRng::seed_from_u64(2);
        let v: Vec<u8> = vec![];
        assert!(v.choose(&mut rng).is_none());
        assert_eq!(*[5u8].choose(&mut rng).unwrap(), 5);
    }
}

//! Uniform sampling over ranges, mirroring `rand::distributions::uniform`.

use crate::{Rng, RngCore};
use std::ops::{Range, RangeInclusive};

/// Marker for types [`Rng::gen_range`] can produce.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform draw from the half-open interval `[low, high)`.
    fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
    /// Uniform draw from the closed interval `[low, high]`.
    fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
}

/// Range-like arguments accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range called with empty range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        assert!(low <= high, "gen_range called with empty range");
        T::sample_inclusive(low, high, rng)
    }
}

macro_rules! impl_uniform_int {
    ($($ty:ty => $wide:ty, $unsigned:ty);* $(;)?) => {$(
        impl SampleUniform for $ty {
            fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                let span = (high as $wide).wrapping_sub(low as $wide) as $unsigned;
                low.wrapping_add(bounded(rng, span as u64) as $ty)
            }

            fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                let span = (high as $wide).wrapping_sub(low as $wide) as $unsigned as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $ty;
                }
                low.wrapping_add(bounded(rng, span + 1) as $ty)
            }
        }
    )*};
}

impl_uniform_int! {
    i8 => i64, u8;
    i16 => i64, u16;
    i32 => i64, u32;
    i64 => i64, u64;
    isize => i64, usize;
    u8 => u64, u8;
    u16 => u64, u16;
    u32 => u64, u32;
    u64 => u64, u64;
    usize => u64, usize;
}

/// Draws uniformly from `[0, span)` by widening multiply with rejection
/// (Lemire's method). `span == 0` means the full 2^64 domain.
#[inline]
fn bounded<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    if span == 0 {
        return rng.next_u64();
    }
    loop {
        let x = rng.next_u64();
        let m = (x as u128).wrapping_mul(span as u128);
        let low = m as u64;
        if low >= span || low >= span.wrapping_neg() % span {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_uniform_float {
    ($($ty:ty),*) => {$(
        impl SampleUniform for $ty {
            fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                let unit = <$ty as crate::Standard>::draw(rng);
                let v = low + (high - low) * unit;
                // Guard against rounding up to the excluded endpoint.
                if v >= high { <$ty>::max(low, high - (high - low) * <$ty>::EPSILON) } else { v }
            }

            fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                let unit = <$ty as crate::Standard>::draw(rng);
                low + (high - low) * unit
            }
        }
    )*};
}

impl_uniform_float!(f32, f64);

#[cfg(test)]
mod tests {
    use crate::rngs::SmallRng;
    use crate::{Rng, SeedableRng};

    #[test]
    fn integer_ranges_cover_all_values() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn single_value_ranges() {
        let mut rng = SmallRng::seed_from_u64(4);
        assert_eq!(rng.gen_range(7i32..8), 7);
        assert_eq!(rng.gen_range(7i32..=7), 7);
    }

    #[test]
    fn negative_integer_ranges() {
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..200 {
            let v = rng.gen_range(-10i32..-5);
            assert!((-10..-5).contains(&v));
        }
    }
}

//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// A small, fast, deterministic generator (xoshiro256++).
///
/// Unlike the upstream `rand::rngs::SmallRng`, the output stream here is
/// guaranteed stable across releases of this workspace — simulation results
/// keyed by seed are reproducible forever.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SmallRng {
    /// The generator's full internal state. Together with
    /// [`SmallRng::from_state`] this lets a checkpoint capture the exact
    /// stream position, so a resumed simulation draws the same tail of
    /// values an uninterrupted run would have.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator at an exact stream position captured by
    /// [`SmallRng::state`]. The all-zero state is a fixed point of
    /// xoshiro and can never be produced by a seeded generator, so it is
    /// nudged the same way `from_seed` does.
    pub fn from_state(mut s: [u64; 4]) -> Self {
        if s == [0; 4] {
            s = [0x9e37_79b9_7f4a_7c15, 1, 2, 3];
        }
        SmallRng { s }
    }
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl RngCore for SmallRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for SmallRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, word) in s.iter_mut().enumerate() {
            let mut bytes = [0u8; 8];
            bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
            *word = u64::from_le_bytes(bytes);
        }
        // All-zero state is a fixed point of xoshiro; nudge it.
        if s == [0; 4] {
            s = [0x9e37_79b9_7f4a_7c15, 1, 2, 3];
        }
        SmallRng { s }
    }

    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        SmallRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}
